"""Scan-on-compressed: the packed decoder must be invisible in results.

Three layers of pinning:

* a hypothesis property that :func:`repro.mvbt.compression.scan_packed`
  over randomized entry sequences — compact and normal headers, all three
  ``te`` flags, negative neighbour deltas, ``end_live`` rewrites mid
  sequence — is element-for-element identical to decode-then-filter;
* byte-level checks that ``end_live``'s tail splice produces exactly the
  bytes a full re-encode would;
* a fig9-style golden test that serial and parallel query results are
  byte-identical with the packed path forced on, forced off, and
  adaptive, plus the bounded-memo policy itself.
"""
# repro-lint: disable-file=RL005 — the codec's own tests construct the store

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import wikipedia
from repro.engine import RDFTX
from repro.model.time import MIN_TIME, NOW
from repro.mvbt import MAX_KEY, MIN_KEY, scan_pieces
from repro.mvbt import compression as comp
from repro.mvbt.compression import CompressedLeafStore
from repro.mvbt.entry import LeafEntry
from repro.obs import metrics as _metrics


def entry(v1, v2, v3, ts, te=NOW):
    return LeafEntry((v1, v2, v3), ts, te, None)


@pytest.fixture()
def packed_mode():
    """Restore the module-global packed mode after a test flips it."""
    previous = comp.packed_mode()
    yield comp.set_packed_mode
    comp.set_packed_mode(previous)


@pytest.fixture()
def memo_policy():
    """Restore the module-global memo policy after a test tunes it."""
    previous = comp.set_memo_policy()
    yield comp.set_memo_policy
    comp.set_memo_policy(*previous)


def reference_scan(store, key_low, key_high, t1, t2, node_start, node_death):
    """The legacy path: decode everything, then filter."""
    out = []
    for e in store.entries():
        key = e.key
        if key < key_low or key >= key_high:
            continue
        lo = max(e.start, node_start)
        hi = min(e.end, node_death)
        if lo >= hi or lo >= t2 or t1 >= hi:
            continue
        out.append((key, lo, hi, None))
    return out


# ------------------------------------------------------------- strategies


@st.composite
def entry_lists(draw):
    """Entry sequences exercising every header shape.

    Small value domains force shared-v1 runs (compact headers) next to
    jumps in *both* directions (negative neighbour deltas); the ``te``
    choice covers live (flag 0), short-interval (flag 1), and
    beyond-the-short-limit (flag 2) encodings.  MVBT leaf invariants are
    respected: unique ``(key, ts)``, at most one live entry per key.
    """
    n = draw(st.integers(min_value=0, max_value=30))
    out = []
    seen = set()
    live_keys = set()
    ts = 0
    for _ in range(n):
        ts += draw(st.integers(min_value=0, max_value=300))
        v1 = draw(st.integers(min_value=1, max_value=8))
        v2 = draw(st.integers(min_value=1, max_value=2**20))
        v3 = draw(st.integers(min_value=1, max_value=6))
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            te = NOW
        elif choice == 1:  # short interval: te flag 1
            te = ts + draw(st.integers(min_value=1, max_value=0xFFFF))
        else:  # long interval: te flag 2 (delta vs node min te)
            te = ts + 0xFFFF + draw(st.integers(min_value=1, max_value=2**20))
        key = (v1, v2, v3)
        if (key, ts) in seen or (te == NOW and key in live_keys):
            continue
        seen.add((key, ts))
        if te == NOW:
            live_keys.add(key)
        out.append(entry(v1, v2, v3, ts, te))
    return out


@st.composite
def regions(draw):
    lo1 = draw(st.integers(min_value=0, max_value=9))
    span = draw(st.integers(min_value=0, max_value=9))
    key_low = draw(st.sampled_from([
        MIN_KEY, (lo1,), (lo1, draw(st.integers(0, 2**20)))
    ]))
    key_high = draw(st.sampled_from([
        MAX_KEY, (lo1 + span,), (lo1 + span, draw(st.integers(0, 2**20)))
    ]))
    t1 = draw(st.one_of(
        st.just(MIN_TIME), st.integers(min_value=0, max_value=5000)
    ))
    t2 = draw(st.one_of(
        st.just(NOW), st.integers(min_value=0, max_value=10_000)
    ))
    return key_low, key_high, t1, t2


# ------------------------------------------------ the core property tests


@settings(max_examples=120, deadline=None)
@given(entry_lists(), regions(), st.integers(0, 10_000),
       st.booleans(), st.data())
def test_scan_packed_equals_decode_then_filter(entries, region, node_start,
                                               finite_death, data):
    store = CompressedLeafStore(entries)
    key_low, key_high, t1, t2 = region
    node_death = (
        node_start + data.draw(st.integers(1, 10_000))
        if finite_death else NOW
    )
    got = store.scan_packed(key_low, key_high, t1, t2,
                            node_start, node_death)
    want = reference_scan(store, key_low, key_high, t1, t2,
                          node_start, node_death)
    assert got == want


@settings(max_examples=80, deadline=None)
@given(entry_lists(), st.lists(st.integers(0, 29), max_size=4), regions())
def test_scan_packed_after_end_live_rewrites(entries, kills, region):
    """``end_live`` mid-sequence re-shapes the buffer (a compact follower
    of the killed entry must fall back to a normal header); the packed
    scan must track the rewritten bytes exactly."""
    store = CompressedLeafStore(entries)
    horizon = max((e.start for e in entries), default=0) + 7
    for which in kills:
        live = [e for e in store.entries() if e.end == NOW]
        if not live:
            break
        store.end_live(live[which % len(live)].key, horizon)
    key_low, key_high, t1, t2 = region
    got = store.scan_packed(key_low, key_high, t1, t2, 0, NOW)
    assert got == reference_scan(store, key_low, key_high, t1, t2, 0, NOW)


@settings(max_examples=60, deadline=None)
@given(entry_lists(), st.integers(0, 29))
def test_end_live_tail_splice_matches_full_reencode(entries, which):
    """The tail rebuild must produce byte-identical output to re-encoding
    the whole (post-delete) sequence against the same node bases."""
    store = CompressedLeafStore(entries)
    live = [e for e in store.entries() if e.end == NOW]
    if not live:
        return
    target = live[which % len(live)]
    horizon = max(e.start for e in entries) + 3
    state_before = store.to_state()
    assert store.end_live(target.key, horizon)
    expected = list(store.entries())
    clone = CompressedLeafStore.from_state({
        **state_before,
        "buf": b"",
        "count": 0,
        "last_entry": None,
        "checkpoint_ts": state_before["base_ts"],
    })
    for e in expected:
        clone.append(e)
    assert clone.to_state()["buf"] == store.to_state()["buf"]
    # And the snapshot roundtrip stays byte-compatible.
    restored = CompressedLeafStore.from_state(store.to_state())
    assert list(restored.entries()) == expected


@settings(max_examples=40, deadline=None)
@given(entry_lists(), st.integers(0, 29))
def test_end_live_does_not_mutate_handed_out_entries(entries, which):
    """Readers holding a previously returned entry tuple must keep seeing
    the pre-delete state (the memo-aliasing bug)."""
    store = CompressedLeafStore(entries)
    for _ in range(comp.HOT_USES + 1):
        before = store.entries()  # hot: memoized and handed out
    live = [e for e in before if e.end == NOW]
    if not live:
        return
    target = live[which % len(live)]
    snapshot = [(e.key, e.start, e.end) for e in before]
    assert store.end_live(target.key, max(e.start for e in entries) + 3)
    assert [(e.key, e.start, e.end) for e in before] == snapshot
    # The store itself sees the rewrite.
    assert any(
        e.key == target.key and e.start == target.start and e.end != NOW
        for e in store.entries()
    )


# ------------------------------------------------------------ memo policy


class TestMemoPolicy:
    def test_cold_leaf_keeps_nothing_resident(self):
        store = CompressedLeafStore([entry(1, 2, 3, 5), entry(1, 2, 4, 6)])
        resident = comp.memo_entries()
        first = store.entries()
        assert isinstance(first, tuple)
        assert store._decoded is None  # one use: still cold
        assert comp.memo_entries() == resident

    def test_hot_leaf_memoizes_and_charges_the_budget(self, memo_policy):
        memo_policy(hot_uses=2)
        store = CompressedLeafStore([entry(1, 2, 3, 5), entry(1, 2, 4, 6)])
        resident = comp.memo_entries()
        store.entries()
        store.entries()
        assert store._decoded is not None
        assert comp.memo_entries() == resident + 2
        # Mutation invalidates and returns the charge.
        store.append(entry(1, 2, 5, 9))
        assert store._decoded is None
        assert comp.memo_entries() == resident

    def test_exhausted_budget_blocks_memoization(self, memo_policy):
        memo_policy(hot_uses=1, budget=comp.memo_entries())
        store = CompressedLeafStore([entry(1, 2, 3, 5)])
        store.entries()
        assert store._decoded is None

    def test_packed_scans_promote_a_hot_leaf(self, packed_mode, memo_policy):
        packed_mode(comp.PACKED_AUTO)  # pin: asserts adaptive behaviour
        memo_policy(hot_uses=3)
        store = CompressedLeafStore([entry(1, 2, 3, 5)])
        assert store.wants_packed()
        store.scan_packed(MIN_KEY, MAX_KEY, MIN_TIME, NOW, 0, NOW)
        store.scan_packed(MIN_KEY, MAX_KEY, MIN_TIME, NOW, 0, NOW)
        store.scan_packed(MIN_KEY, MAX_KEY, MIN_TIME, NOW, 0, NOW)
        # Hot now: the adaptive mode prefers decoding once and reusing.
        assert not store.wants_packed()
        store.entries()
        assert store._decoded is not None
        assert not store.wants_packed()

    def test_release_memo_returns_the_charge(self, memo_policy):
        memo_policy(hot_uses=1)
        store = CompressedLeafStore([entry(1, 2, 3, 5), entry(1, 2, 4, 6)])
        resident = comp.memo_entries()
        store.entries()
        assert comp.memo_entries() == resident + 2
        store.release_memo()
        assert comp.memo_entries() == resident

    def test_forced_modes_override_the_policy(self, packed_mode,
                                              memo_policy):
        memo_policy(hot_uses=1)
        store = CompressedLeafStore([entry(1, 2, 3, 5)])
        store.entries()
        assert store._decoded is not None
        packed_mode(comp.PACKED_FORCE)
        assert store.wants_packed()
        packed_mode(comp.PACKED_OFF)
        assert not store.wants_packed()

    def test_packed_counters_advance(self):
        if not _metrics.ENABLED:
            pytest.skip("REPRO_OBS=0")
        store = CompressedLeafStore(
            [entry(1, 2, 3, 5), entry(4, 2, 3, 6), entry(5, 2, 3, 7)]
        )
        scans = comp._PACKED_SCANS.value
        skipped = comp._PACKED_SKIPPED.value
        store.scan_packed((4,), (5,), MIN_TIME, NOW, 0, NOW)
        assert comp._PACKED_SCANS.value == scans + 1
        assert comp._PACKED_SKIPPED.value == skipped + 2

    def test_switch_parsing(self):
        assert comp._parse_packed_mode(None) == comp.PACKED_AUTO
        assert comp._parse_packed_mode("auto") == comp.PACKED_AUTO
        assert comp._parse_packed_mode("1") == comp.PACKED_AUTO
        assert comp._parse_packed_mode("on") == comp.PACKED_AUTO
        assert comp._parse_packed_mode("0") == comp.PACKED_OFF
        assert comp._parse_packed_mode("off") == comp.PACKED_OFF
        assert comp._parse_packed_mode("2") == comp.PACKED_FORCE
        assert comp._parse_packed_mode("force") == comp.PACKED_FORCE
        default = comp._DEFAULT_MEMO_BUDGET
        assert comp._parse_budget(None, default) == default
        assert comp._parse_budget("1024", default) == 1024
        assert comp._parse_budget("bogus", default) == default
        assert comp._parse_budget("3", comp.HOT_USES) == 3


# -------------------------------------------------- fig9 golden identity


@pytest.fixture(scope="module")
def engine():
    graph = wikipedia.generate(1000, seed=23).graph
    return RDFTX.from_graph(graph)


@pytest.fixture(scope="module")
def workload(engine):
    from repro.datasets.queries import join_queries, selection_queries

    graph = engine._graph
    return selection_queries(graph, count=5) + join_queries(graph, count=3)


class TestFig9GoldenIdentity:
    def test_serial_and_parallel_identical_across_modes(self, engine,
                                                        workload,
                                                        packed_mode):
        golden = None
        for mode in (comp.PACKED_OFF, comp.PACKED_AUTO, comp.PACKED_FORCE):
            packed_mode(mode)
            for par in (False, True):
                engine.parallel = par
                got = [repr(engine.query(t).rows) for t in workload]
                engine.parallel = False
                if golden is None:
                    golden = got
                assert got == golden, f"mode={mode} parallel={par}"

    def test_scan_layer_identity_on_tree(self, engine, packed_mode):
        regions = [
            (MIN_KEY, MAX_KEY, MIN_TIME, NOW),
            (MIN_KEY, MAX_KEY, 5, 50),
            ((5,), (900, 0, 0), MIN_TIME, NOW),
        ]
        for tree in engine.indexes.values():
            for region in regions:
                packed_mode(comp.PACKED_OFF)
                want = scan_pieces(tree, *region)
                packed_mode(comp.PACKED_FORCE)
                assert scan_pieces(tree, *region) == want
