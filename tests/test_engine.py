"""End-to-end tests of the RDF-TX engine on the paper's running examples.

The fixture graph is Table 2 (University of California) plus a second
university so joins have something to distinguish.
"""

import pytest

from repro.engine import RDFTX, UnknownTermError
from repro.model import (
    NOW,
    Period,
    PeriodSet,
    TemporalGraph,
    date_to_chronon,
)
from repro.mvbt.tree import MVBTConfig

D = date_to_chronon


@pytest.fixture(scope="module")
def graph():
    g = TemporalGraph()
    # Table 2: University of California.
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "endowment", "10.3", D("07/01/2013"), D("07/01/2014"))
    g.add("UC", "endowment", "13.1", D("07/01/2014"))
    g.add("UC", "undergraduate", "184562", D("05/14/2013"), D("01/30/2015"))
    g.add("UC", "undergraduate", "188300", D("01/30/2015"))
    g.add("UC", "staff", "18896", D("08/29/2013"), D("01/30/2015"))
    g.add("UC", "staff", "19700", D("01/30/2015"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UC", "budget", "25.46", D("01/30/2015"))
    # A second university for joins.
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"), D("07/01/2014"))
    g.add("UM", "president", "Mark_Schlissel", D("07/01/2014"))
    g.add("UM", "undergraduate", "27979", D("09/01/2012"), D("09/01/2014"))
    g.add("UM", "undergraduate", "28395", D("09/01/2014"))
    g.add("UM", "budget", "6.6", D("01/01/2013"))
    return g


@pytest.fixture(scope="module")
def engine(graph):
    return RDFTX.from_graph(
        graph, config=MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)
    )


class TestTemporalSelection:
    def test_example_1_when_query(self, engine):
        """Example 1: when did Napolitano serve as UC president."""
        result = engine.query(
            "SELECT ?t {UC president Janet_Napolitano ?t}"
        )
        assert len(result) == 1
        (row,) = result
        assert row["t"] == PeriodSet([Period(D("09/30/2013"), NOW)])

    def test_example_2_budget_2013(self, engine):
        """Example 2: budget of UC in 2013."""
        result = engine.query(
            "SELECT ?budget "
            "{UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}"
        )
        assert result.column("budget") == ["22.7"]

    def test_example_2_with_time_output(self, engine):
        result = engine.query(
            "SELECT ?budget ?t "
            "{UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}"
        )
        (row,) = result
        # The binding is restricted to 2013 (point-based semantics).
        assert row["t"] == PeriodSet(
            [Period(D("01/30/2013"), D("2014-01-01"))]
        )

    def test_example_3_long_presidency(self, engine):
        """Example 3: presidents before 2011 serving > 1 year."""
        result = engine.query(
            "SELECT ?person ?t "
            "{ UC president ?person ?t . "
            "FILTER(YEAR(?t) <= 2010 && LENGTH(?t) > 365 DAY)}"
        )
        # Yudof held office 2008-2013; restricted to <=2010 that's still
        # more than a year.  Napolitano (2013-) has no chronon <= 2010.
        assert result.column("person") == ["Mark_Yudof"]

    def test_time_travel_snapshot(self, engine):
        """Flash back to one day via a constant temporal element."""
        result = engine.query("SELECT ?o {UC president ?o 2010-05-01}")
        assert result.column("o") == ["Mark_Yudof"]

    def test_predicate_variable(self, engine):
        result = engine.query(
            "SELECT ?p ?v {UC ?p ?v 2014-01-15}"
        )
        got = dict(zip(result.column("p"), result.column("v")))
        assert got == {
            "president": "Janet_Napolitano",
            "endowment": "10.3",
            "undergraduate": "184562",
            "staff": "18896",
            "budget": "22.7",
        }

    def test_object_bound_pattern(self, engine):
        result = engine.query("SELECT ?s {?s president Mark_Schlissel ?t}")
        assert result.column("s") == ["UM"]

    def test_unknown_term_gives_empty(self, engine):
        result = engine.query("SELECT ?t {MIT president ?p ?t}")
        assert len(result) == 0


class TestTemporalJoin:
    def test_example_4_undergrads_during_yudof(self, engine):
        """Example 4: undergrad count while Yudof was in office."""
        result = engine.query(
            "SELECT ?university ?number ?t "
            "{?university undergraduate ?number ?t . "
            "?university president Mark_Yudof ?t . }"
        )
        (row,) = result
        assert row["university"] == "UC"
        assert row["number"] == "184562"
        # Overlap of undergrad [05/14/2013, 01/30/2015) and Yudof
        # [06/16/2008, 09/30/2013).
        assert row["t"] == PeriodSet(
            [Period(D("05/14/2013"), D("09/30/2013"))]
        )

    def test_three_way_join(self, engine):
        """Adding one more pattern, as the paper notes, is all it takes."""
        result = engine.query(
            "SELECT ?university ?number ?staff ?t "
            "{?university undergraduate ?number ?t . "
            "?university staff ?staff ?t . "
            "?university president Janet_Napolitano ?t . }"
        )
        rows = {(r["number"], r["staff"]) for r in result}
        assert rows == {("184562", "18896"), ("188300", "19700")}

    def test_example_5_succession(self, engine):
        """Example 5: who succeeded Mark Yudof."""
        result = engine.query(
            "SELECT ?successor "
            "{ UC president Mark_Yudof ?t1 . "
            "UC president ?successor ?t2 . "
            "FILTER(TEND(?t1) = TSTART(?t2)) . }"
        )
        assert result.column("successor") == ["Janet_Napolitano"]

    def test_join_without_temporal_overlap(self, engine):
        result = engine.query(
            "SELECT ?university "
            "{?university president Mark_Yudof ?t . "
            "?university president Mark_Schlissel ?t . }"
        )
        assert len(result) == 0

    def test_cross_university_same_period(self, engine):
        """Key + temporal join across subjects via shared ?t."""
        result = engine.query(
            "SELECT ?p1 ?p2 "
            "{UC president ?p1 ?t . UM president ?p2 ?t . "
            "FILTER(YEAR(?t) = 2013)}"
        )
        pairs = {(r["p1"], r["p2"]) for r in result}
        assert pairs == {
            ("Mark_Yudof", "Mary_Sue_Coleman"),
            ("Janet_Napolitano", "Mary_Sue_Coleman"),
        }


class TestEngineMaintenance:
    def test_incremental_updates_visible(self, graph):
        engine = RDFTX.from_graph(
            graph, config=MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)
        )
        t = engine.horizon + 10
        engine.insert("UC", "chancellor", "Gene_Block", t)
        result = engine.query("SELECT ?o ?t {UC chancellor ?o ?t}")
        (row,) = result
        assert row["o"] == "Gene_Block"
        engine.delete("UC", "chancellor", "Gene_Block", t + 100)
        result = engine.query("SELECT ?o ?t {UC chancellor ?o ?t}")
        (row,) = result
        assert row["t"] == PeriodSet([Period(t, t + 100)])
        engine.check_invariants()

    def test_uncompressed_engine_agrees(self, graph):
        compressed = RDFTX.from_graph(graph, compress=True)
        plain = RDFTX.from_graph(graph, compress=False)
        q = "SELECT ?p ?v ?t {UC ?p ?v ?t . FILTER(YEAR(?t) = 2014)}"
        assert sorted(
            map(repr, compressed.query(q))
        ) == sorted(map(repr, plain.query(q)))


class TestResultFormatting:
    def test_to_table(self, engine):
        result = engine.query(
            "SELECT ?t {UC president Janet_Napolitano ?t}"
        )
        table = result.to_table()
        assert "?t" in table
        assert "[09/30/2013 ... now]" in table

    def test_explain(self, engine):
        text = engine.explain(
            "SELECT ?university ?number ?t "
            "{?university undergraduate ?number ?t . "
            "?university president Mark_Yudof ?t . }"
        )
        assert "Plan:" in text
        assert "scan" in text

    def test_empty_result_table(self, engine):
        result = engine.query("SELECT ?t {UC president Nobody_Here ?t}")
        assert "?t" in result.to_table()
