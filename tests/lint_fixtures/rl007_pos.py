# repro-lint: scope=src/repro/service/handler.py
"""Positive RL007: handlers that make failures disappear."""


def handle(request):
    try:
        return dispatch(request)
    except Exception:
        return None  # the failure vanished


def parse(raw):
    try:
        return int(raw)
    except:  # noqa: E722 — bare except is the point of this fixture
        return 0
