"""Positive RL015: four flavours of sender/handler protocol drift."""


def _op_status(payload):
    return {"ok": True, "applied": 7}


def _op_update(payload):
    revision = payload["subject"]
    return {"ok": True, "revision": revision}


_OPS = {"status": _op_status, "update": _op_update}


def _dispatch(payload):
    handler = _OPS[payload["op"]]
    return handler(payload)


def bad_unknown_op(client):
    return client.rpc({"op": "statuss"})  # typo: no such handler


def bad_missing_field(client):
    return client.rpc({"op": "update"})  # _op_update reads "subject"


def bad_extra_field(client):
    return client.rpc({"op": "status", "verbose": True})  # never read


def bad_stale_response_key(client):
    response = client.rpc({"op": "status"})
    return response["leader"]  # _op_status produces "applied", not this
