"""Negative RL002: mutations under write_locked() or explicitly marked."""
from repro.service.locks import requires_writer_lock


class Store:
    def __init__(self, path):
        self._rw = make_lock()
        self.engine = None  # the constructor owns the un-shared object

    def swap(self, engine):
        with self._rw.write_locked():
            self.engine = engine

    def update(self, record):
        with self._rw.write_locked():
            if record:
                self.engine.insert(record)
            self._revision += 1

    @requires_writer_lock
    def _apply(self, record):
        self.engine.insert(record)  # every caller holds the lock

    def query(self, text):
        with self._rw.read_locked():
            return self.engine.run(text)  # run() is not a mutator
