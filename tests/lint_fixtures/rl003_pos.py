"""Positive RL003: in-memory apply not dominated by the WAL append."""


class Store:
    def __init__(self, path):
        self._wal = open_wal(path)

    def update_wrong_order(self, record):
        self._apply(record)  # applied before it is durable
        self._wal.append(record)

    def update_unlogged(self, record):
        self.engine.insert(record)  # no append anywhere
