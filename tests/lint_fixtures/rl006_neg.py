# repro-lint: scope=src/repro/service/wal.py
"""Negative RL006: profiling timers never reach the byte stream."""
import time


def timed_append(wal, record):
    start = time.perf_counter()
    wal.append(record)
    return time.perf_counter() - start
