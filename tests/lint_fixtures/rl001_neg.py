"""Negative RL001: blocking work outside the lock, pure work inside."""
import os


class Store:
    def checkpoint(self):
        os.fsync(self.fd)  # fine: lock not held
        with self._rw.write_locked():
            self.revision += 1

    def drain(self):
        with self._writer:  # plain mutex, not the RW lock
            os.fsync(self.fd)
