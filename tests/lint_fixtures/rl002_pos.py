"""Positive RL002: store state mutated without the write lock."""


class Store:
    def __init__(self, path):
        self._rw = make_lock()
        self.engine = None

    def swap(self, engine):
        self.engine = engine  # reader-visible mutation, no lock

    def apply(self, record):
        self.engine.insert(record)  # mutating call, no lock
        self._revision += 1
