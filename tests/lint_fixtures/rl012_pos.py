"""Positive RL012: bare-imported factories with uncataloged names."""
from repro.obs.metrics import counter, gauge

_TYPO = counter("service.store.upates")  # typo: not cataloged
_BAD_FORM = gauge("Process RSS!")  # malformed


def record(name):
    counter(name).inc()  # dynamic name: catalog cannot list it
