"""Positive RL016: resources orphaned when an exception exits early."""
import socket


def leaky_connect(address):
    sock = socket.create_connection(address)
    sock.setsockopt(1, 2, 3)  # raises -> sock is orphaned
    return sock


def leaky_write(path, data):
    handle = open(path, "w")
    data = normalize(data)  # raises -> handle is orphaned
    handle.write(data)
    handle.close()
