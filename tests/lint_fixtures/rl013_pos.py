"""Positive RL013: blocking reachable through calls under cluster locks."""
# repro-lint: scope=src/repro/cluster/coordinator.py
import time


class Coordinator:
    def update(self):
        with self._writer:
            self._flush_all()  # two hops from time.sleep

    def _flush_all(self):
        self._push()

    def _push(self):
        time.sleep(0.1)

    def promote(self, member):
        with member.failover_lock:
            time.sleep(0.5)  # zero-hop under the member lock
