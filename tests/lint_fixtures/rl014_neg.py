"""Negative RL014: both paths agree on writer-before-maint order."""
# repro-lint: scope=src/repro/service/store.py
import threading


class Store:
    def __init__(self):
        self._writer = threading.Lock()
        self._maint = threading.Lock()

    def update(self):
        with self._writer:
            with self._maint:
                self.revision = self.revision + 1

    def compact(self):
        with self._writer:
            self._sweep()

    def _sweep(self):
        with self._maint:
            self.dirty = False
