"""Negative RL017: cataloged event names; unrelated ``record`` calls."""
from repro.obs import events as _events
from repro.obs.events import record


class _Stats:
    def record(self, name):
        return name


STATS = _Stats()

_events.EVENTS.record("cluster.event.promoted", shard_id=0)
record("cluster.event.resync", shard_id=1, role="replica")
STATS.record("whatever shape")  # not the event log's receiver
