# repro-lint: scope=src/repro/mvbt/node.py
"""Negative RL005: the codec's own consumer may construct the store."""
from repro.mvbt.compression import CompressedLeafStore


def compress(entries):
    return CompressedLeafStore(entries)
