"""Positive RL017: event records with uncataloged / malformed names."""
from repro.obs import events as _events
from repro.obs.events import record

_events.EVENTS.record("cluster.event.promotted")  # typo: not cataloged
record("Cluster Promoted!")  # malformed


def announce(name):
    _events.EVENTS.record(name)  # dynamic name: catalog cannot list it
