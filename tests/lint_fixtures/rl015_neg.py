"""Negative RL015: senders and handlers that agree on the protocol."""


def _op_query(payload):
    horizon = payload.get("horizon")  # optional: sender may omit it
    return {"ok": True, "rows": [], "applied": horizon}


def _op_update(payload):
    return {"ok": True, "revision": payload["subject"]}


_OPS = {"query": _op_query, "update": _op_update}


def _dispatch(payload):
    trace = payload.get("trace_id")  # envelope field, any op may carry it
    handler = _OPS[payload["op"]]
    return handler(payload), trace


def good_update(client):
    response = client.rpc(
        {"op": "update", "subject": "s", "trace_id": "t"}
    )
    return response["revision"]


def good_query(client):
    response = client.rpc({"op": "query"})
    if not response["ok"]:
        raise RuntimeError(response["error"])
    return response["rows"]


def skipped_dynamic(client, extra_key):
    # Non-constant key: the payload cannot be fully resolved, so the
    # field checks are skipped rather than guessed at.
    return client.rpc({"op": "query", extra_key: 1})
