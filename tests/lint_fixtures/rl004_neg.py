"""Negative RL004: lifetime writes inside the sanctioned helpers."""


class Node:
    def __init__(self, birth):
        self.death = None

    def end_live(self, key, version):
        entry = self.find(key)
        entry.end = version

    def end_child(self, child, version):
        entry = self.route(child)
        entry.end = version


class Tree:
    def _restructure(self, node, version):
        node.death = version


def unrelated(entry):
    entry.endpoint = 1  # different attribute entirely
