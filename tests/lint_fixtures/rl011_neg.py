"""Negative RL011: context-manager spans and unrelated start()/finish()."""
import threading

from repro.obs import trace


def handle(request):
    with trace.span("request", path=request.path):
        with trace.span("inner"):
            return request.run()


def background(worker):
    thread = threading.Thread(target=worker)
    thread.start()  # not a span: receiver name carries no span hint
    parser = worker.parser
    parser.finish()  # not a span either
