"""Positive RL005: compressed-leaf internals touched outside the codec,
and scan output mutated in place by a caller."""
from repro.mvbt import scan_pieces
from repro.mvbt.compression import CompressedLeafStore


def rebuild(entries):
    store = CompressedLeafStore(entries)  # ad-hoc construction
    return len(store._buf)  # private buffer poked directly


def tamper(tree, leaf):
    pieces = scan_pieces(tree)
    pieces.append(("k", 0, 1, None))  # mutates shared scan output
    leaf.entries().sort()  # mutates a producer result directly
    return pieces
