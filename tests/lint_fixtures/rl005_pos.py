"""Positive RL005: compressed-leaf internals touched outside the codec."""
from repro.mvbt.compression import CompressedLeafStore


def rebuild(entries):
    store = CompressedLeafStore(entries)  # ad-hoc construction
    return len(store._buf)  # private buffer poked directly
