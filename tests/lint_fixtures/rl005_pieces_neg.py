"""Negative RL005 (pieces): reading and copying scan output is fine."""
from repro.mvbt import scan_pieces


def summarize(tree):
    pieces = scan_pieces(tree)
    total = len(pieces)
    for _key, lo, hi, _payload in pieces:  # iteration only
        total += hi - lo
    rows = list(pieces)  # a private copy...
    rows.sort()          # ...is the caller's to mutate
    pieces = sorted(rows)  # rebinding releases the tracked name
    pieces.append(None)    # no longer scan output
    out = []
    out.extend(rows)       # plain list mutation is out of scope
    return total, out, pieces
