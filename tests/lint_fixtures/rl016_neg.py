"""Negative RL016: the structurally safe resource lifetimes."""
import socket


def with_block(address):
    with socket.create_connection(address) as sock:
        sock.sendall(b"ping")


def direct_return(address):
    return socket.create_connection(address)


def guarded(address):
    sock = socket.create_connection(address)
    try:
        sock.setsockopt(1, 2, 3)
    except OSError:
        sock.close()
        raise
    return sock


def immediate_return(address):
    sock = socket.create_connection(address)
    return sock


def owned(self, address):
    sock = socket.create_connection(address)
    self.sock = sock  # ownership moves to the object
