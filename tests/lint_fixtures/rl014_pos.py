"""Positive RL014: writer->maint nesting vs. maint->writer via a call."""
# repro-lint: scope=src/repro/service/store.py
import threading


class Store:
    def __init__(self):
        self._writer = threading.Lock()
        self._maint = threading.Lock()

    def update(self):
        with self._writer:
            with self._maint:
                self.revision = self.revision + 1

    def compact(self):
        with self._maint:
            self._flush()  # takes _writer one frame down

    def _flush(self):
        with self._writer:
            self.dirty = False
