"""Positive RL011: spans driven by hand instead of a context manager."""
from repro.obs import trace


def handle(request):
    span = trace.span("request")
    span.start()  # manual lifecycle: leaks open if handling raises
    try:
        return request.run()
    finally:
        span.finish()  # manual close of a span-named receiver
