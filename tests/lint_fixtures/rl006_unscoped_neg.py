"""Negative RL006: wall-clock reads are fine outside the durable paths."""
import time


def bench(fn):
    start = time.time()
    fn()
    return time.time() - start
