# repro-lint: scope=src/repro/service/wal.py
"""Positive RL006: nondeterminism in a replay-deterministic path."""
import random
import time as _time
from uuid import uuid4


def stamp_record(record):
    record["at"] = _time.time()  # replays of the same WAL now differ
    record["id"] = uuid4()
    record["salt"] = random.random()
    return record
