"""Positive RL009: metric names the obs catalog does not know."""
from repro.obs import metrics as _metrics

_TYPO = _metrics.counter("service.store.upates")  # typo: not cataloged
_BAD_FORM = _metrics.counter("Service Store Updates!")  # malformed


def record(name):
    _metrics.counter(name).inc()  # dynamic name: catalog cannot list it
