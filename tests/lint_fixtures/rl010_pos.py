# repro-lint: scope=src/repro/mvsbt/tree.py
"""Positive RL010: asserts guarding real control flow."""

assert True, "module-level asserts vanish under -O too"


def split_node(node, boundary):
    assert node.is_leaf, "index entries never straddle"
    return node.split(boundary)
