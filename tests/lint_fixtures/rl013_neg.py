"""Negative RL013: blocking happens outside the lock, or is RL001's.

The direct ``time.sleep`` under a ``read_locked()`` guard is the RW
lock's *zero-hop* case, which RL001 already reports — RL013 must stay
silent on it instead of double-flagging.
"""
# repro-lint: scope=src/repro/cluster/coordinator.py
import time


class Coordinator:
    def update(self):
        payload = self._encode()
        with self._writer:
            self._bump()  # pure in-memory work under the lock
        self._rpc(payload)  # the blocking call runs after release

    def poll(self):
        with self._rw.read_locked():
            time.sleep(0.01)  # RL001's finding, not RL013's

    def _encode(self):
        return {}

    def _bump(self):
        self.revision = self.revision + 1

    def _rpc(self, payload):
        time.sleep(0.01)
