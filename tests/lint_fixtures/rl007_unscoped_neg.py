"""Negative RL007: silent broad except outside service/engine paths.

Bench and dataset-generation code may swallow (e.g. optional imports);
only the hot serving layers are held to the stricter standard.
"""


def probe(fn):
    try:
        return fn()
    except Exception:
        return None
