"""Positive RL008: mutable defaults shared across calls."""


def collect(item, bucket=[]):
    bucket.append(item)
    return bucket


def configure(overrides={}, *, tags=set()):
    return overrides, tags


def build(parts=list()):
    return parts
