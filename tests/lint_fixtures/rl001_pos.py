"""Positive RL001: blocking calls while the RW lock is held."""
import os
import time


class Store:
    def checkpoint(self):
        with self._rw.write_locked():
            os.fsync(self.fd)  # blocks every queued reader

    def poll(self):
        with self._rw.read_locked():
            time.sleep(0.05)
