"""Negative RL008: None defaults and immutable defaults."""


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def configure(overrides=None, *, tags=(), limit=10, name=""):
    return overrides, tags, limit, name
