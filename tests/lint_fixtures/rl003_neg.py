"""Negative RL003: log-before-apply, or explicitly-marked replay helpers."""
from repro.service.locks import requires_writer_lock


class Store:
    def __init__(self, path):
        self._wal = open_wal(path)

    def update(self, record):
        self._wal.append(record)
        self._apply(record)

    @requires_writer_lock
    def _replay(self, record):
        self.engine.insert(record)  # record already in the WAL

    def stats(self):
        return self._wal.size()  # no apply at all
