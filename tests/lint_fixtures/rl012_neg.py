"""Negative RL012: cataloged bare usage; same-named non-obs imports."""
from collections import Counter as counter_cls
from repro.obs.metrics import counter, timer_stat

_UPDATES = counter("service.store.updates")
_QUERY_TIME = timer_stat("engine.query")


def tally(items):
    return counter_cls(items)  # not the obs factory
