# repro-lint: scope=src/repro/service/handler.py
"""Negative RL007: broad catches that surface the error are fine."""
import logging

LOG = logging.getLogger(__name__)


def handle(request):
    try:
        return dispatch(request)
    except Exception:
        LOG.exception("request failed")
        return error_response(500)


def load(path):
    try:
        return read(path)
    except Exception as error:
        raise ServiceError(f"load failed: {path}") from error


def narrow(raw):
    try:
        return int(raw)
    except ValueError:  # narrow catch: fine even when silent
        return 0
