"""Positive RL004: entry/node lifetimes mutated on arbitrary code paths."""


def expire_entry(entry, version):
    entry.end = version  # rewrites history outside the delete helpers


class Tree:
    def prune(self, node, version):
        node.death = version  # only the version-split machinery may kill
