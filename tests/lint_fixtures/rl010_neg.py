# repro-lint: scope=src/repro/mvbt/tree.py
"""Negative RL010: asserts confined to the invariant-check harnesses."""


class Tree:
    def check_invariants(self):
        assert self.root is not None
        self._check_partition(self.root)

    def _check_partition(self, node):
        assert node.entries, "partition must be non-empty"

    def split(self, node, boundary):
        if not node.is_leaf:
            raise RuntimeError("index entry straddles the boundary")
        return node.split(boundary)
