"""Negative RL009: literal, well-formed, cataloged metric names."""
from repro.obs import metrics as _metrics

_UPDATES = _metrics.counter("service.store.updates")
_QUERY_TIME = _metrics.timer_stat("engine.query")


def record(row):
    _UPDATES.inc()
    helper.counter(row)  # receiver is not a metrics registry
