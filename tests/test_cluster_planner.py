"""Shard-planner determinism and routing properties.

The whole cluster design leans on one fact: shard assignment is a pure
function of (subject, shard count).  If it drifted across runs, processes
or pickles, restarted coordinators would route reads to shards that do
not hold the data — silently returning partial results.  These tests pin
that determinism, plus the routing contracts the executor relies on.
"""

from __future__ import annotations

import pickle
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.planner import ShardPlanner, shard_of
from repro.model.graph import TemporalGraph
from repro.sparqlt.ast import QuadPattern, TermConst, Var

TERMS = st.text(
    st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=40
)


def _graph(rows):
    graph = TemporalGraph()
    for index, (s, p, o) in enumerate(rows):
        graph.add(s, p, o, 100 + index)
    return graph


class TestShardOf:
    @given(TERMS, st.integers(min_value=1, max_value=64))
    def test_in_range(self, term, shards):
        assert 0 <= shard_of(term, shards) < shards

    @given(TERMS, st.integers(min_value=1, max_value=64))
    def test_stable_within_process(self, term, shards):
        assert shard_of(term, shards) == shard_of(term, shards)

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0

    def test_rejects_zero_shards(self):
        try:
            shard_of("x", 0)
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_stable_across_interpreters(self):
        # PYTHONHASHSEED varies string hash() per process; crc32 must
        # not.  A fresh interpreter must compute identical assignments.
        terms = ["alpha", "beta", "élève", "p3", ""]
        local = [shard_of(t, 4) for t in terms if t]
        code = (
            "import sys, zlib; sys.path.insert(0, 'src'); "
            "from repro.cluster.planner import shard_of; "
            "print([shard_of(t, 4) for t in "
            f"{[t for t in terms if t]!r}])"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=str(__import__("pathlib").Path(__file__).parent.parent),
            check=True,
        )
        assert eval(out.stdout.strip()) == local  # noqa: S307 - own output


class TestPartitionDeterminism:
    @given(
        st.lists(st.tuples(TERMS, TERMS, TERMS), max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_dataset_same_assignment(self, rows, shards):
        parts_a = ShardPlanner(shards).partition(_graph(rows))
        parts_b = ShardPlanner(shards).partition(_graph(rows))
        keyed_a = [sorted(
            (t.subject, t.predicate, t.object, t.period.start)
            for t in part.triples()
        ) for part in parts_a]
        keyed_b = [sorted(
            (t.subject, t.predicate, t.object, t.period.start)
            for t in part.triples()
        ) for part in parts_b]
        assert keyed_a == keyed_b

    @given(
        st.lists(st.tuples(TERMS, TERMS, TERMS), max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_is_disjoint_and_complete(self, rows, shards):
        graph = _graph(rows)
        parts = ShardPlanner(shards).partition(graph)
        merged = sorted(
            (t.subject, t.predicate, t.object, t.period.start)
            for part in parts for t in part.triples()
        )
        assert merged == sorted(
            (t.subject, t.predicate, t.object, t.period.start)
            for t in graph.triples()
        )
        for shard, part in enumerate(parts):
            for triple in part.triples():
                assert shard_of(triple.subject, shards) == shard

    @given(
        st.lists(st.tuples(TERMS, TERMS, TERMS), max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_pickle_round_trip_preserves_routing(self, rows, shards):
        planner = ShardPlanner(shards)
        planner.partition(_graph(rows))
        clone = pickle.loads(pickle.dumps(planner))
        assert clone.shards == planner.shards
        assert clone.predicate_map == planner.predicate_map
        for s, p, _o in rows:
            pattern = QuadPattern(
                Var("s"), TermConst(p), Var("o"), Var("t")
            )
            assert (clone.shards_for_pattern(pattern)
                    == planner.shards_for_pattern(pattern))
            assert clone.note_write(s, p) == planner.note_write(s, p)


class TestRouting:
    def test_bound_subject_routes_to_owner(self):
        planner = ShardPlanner(4)
        pattern = QuadPattern(
            TermConst("p3"), Var("p"), Var("o"), Var("t")
        )
        assert planner.shards_for_pattern(pattern) == [shard_of("p3", 4)]

    def test_bound_predicate_prunes_to_known_owners(self):
        planner = ShardPlanner(4)
        planner.partition(_graph([("a", "livesIn", "x"),
                                  ("b", "worksAt", "y")]))
        pattern = QuadPattern(
            Var("s"), TermConst("livesIn"), Var("o"), Var("t")
        )
        assert planner.shards_for_pattern(pattern) == [shard_of("a", 4)]

    def test_unknown_predicate_broadcasts(self):
        planner = ShardPlanner(4)
        pattern = QuadPattern(
            Var("s"), TermConst("never-seen"), Var("o"), Var("t")
        )
        assert planner.shards_for_pattern(pattern) == [0, 1, 2, 3]

    def test_unbound_everything_broadcasts(self):
        planner = ShardPlanner(3)
        pattern = QuadPattern(Var("s"), Var("p"), Var("o"), Var("t"))
        assert planner.shards_for_pattern(pattern) == [0, 1, 2]

    def test_note_write_extends_predicate_map(self):
        planner = ShardPlanner(4)
        shard = planner.note_write("subj", "pred")
        assert shard == shard_of("subj", 4)
        assert planner.predicate_map["pred"] == [shard]

    def test_incomplete_map_never_prunes(self):
        # The restart scenario: a fresh planner over pre-loaded shard
        # directories sees a first write of predicate P and must NOT
        # route P-bound patterns to that one shard — pre-loaded P
        # triples may live anywhere.
        planner = ShardPlanner(4)
        planner.note_write("subj", "pred")
        pattern = QuadPattern(
            Var("s"), TermConst("pred"), Var("o"), Var("t")
        )
        assert planner.shards_for_pattern(pattern) == [0, 1, 2, 3]

    def test_rebuild_predicate_map_enables_pruning(self):
        planner = ShardPlanner(4)
        planner.rebuild_predicate_map(
            [["livesIn"], [], ["livesIn", "worksAt"], []]
        )
        lives = QuadPattern(
            Var("s"), TermConst("livesIn"), Var("o"), Var("t")
        )
        works = QuadPattern(
            Var("s"), TermConst("worksAt"), Var("o"), Var("t")
        )
        assert planner.shards_for_pattern(lives) == [0, 2]
        assert planner.shards_for_pattern(works) == [2]

    def test_rebuild_rejects_wrong_inventory_count(self):
        planner = ShardPlanner(4)
        try:
            planner.rebuild_predicate_map([["p"]])
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_single_shard_for_colocated_constants(self):
        planner = ShardPlanner(4)
        subjects = ["a", "b", "c", "d", "e", "f"]
        owner = shard_of(subjects[0], 4)
        same = [s for s in subjects if shard_of(s, 4) == owner]
        patterns = [
            QuadPattern(TermConst(s), Var("p"), Var("o"), Var("t"))
            for s in same
        ]
        assert planner.single_shard_for(patterns) == owner

    def test_single_shard_for_mixed_is_none(self):
        planner = ShardPlanner(4)
        subjects = ["a", "b", "c", "d", "e", "f"]
        owners = {shard_of(s, 4) for s in subjects}
        assert len(owners) > 1, "test needs subjects on distinct shards"
        patterns = [
            QuadPattern(TermConst(s), Var("p"), Var("o"), Var("t"))
            for s in subjects
        ]
        assert planner.single_shard_for(patterns) is None

    def test_single_shard_for_unbound_subject_is_none(self):
        planner = ShardPlanner(4)
        patterns = [
            QuadPattern(Var("s"), TermConst("p"), Var("o"), Var("t"))
        ]
        assert planner.single_shard_for(patterns) is None
