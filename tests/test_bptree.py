"""Tests for the classic B+ tree substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BPlusTree


class TestBasics:
    def test_rejects_tiny_branching(self):
        with pytest.raises(ValueError):
            BPlusTree(branching=2)

    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) == []
        assert list(tree.items()) == []

    def test_insert_get(self):
        tree = BPlusTree(branching=4)
        tree.insert(3, "a")
        tree.insert(1, "b")
        tree.insert(2, "c")
        assert tree.get(1) == ["b"]
        assert len(tree) == 3

    def test_duplicates(self):
        tree = BPlusTree(branching=4)
        tree.insert(7, "x")
        tree.insert(7, "y")
        assert sorted(tree.get(7)) == ["x", "y"]

    def test_range_is_half_open(self):
        tree = BPlusTree(branching=4)
        for i in range(20):
            tree.insert(i, i * 10)
        got = [k for k, _ in tree.range(5, 10)]
        assert got == [5, 6, 7, 8, 9]

    def test_items_sorted(self):
        tree = BPlusTree(branching=4)
        import random

        rng = random.Random(7)
        keys = list(range(200))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == list(range(200))
        tree.check_invariants()

    def test_remove(self):
        tree = BPlusTree(branching=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.remove(5, "a")
        assert tree.get(5) == ["b"]
        assert not tree.remove(5, "zzz")
        assert not tree.remove(99, "a")
        assert len(tree) == 1

    def test_tuple_keys(self):
        tree = BPlusTree(branching=4)
        tree.insert((1, 2, 3), "t")
        tree.insert((1, 2), "p")
        got = [v for _, v in tree.range((1, 2), (1, 2, 4))]
        assert got == ["p", "t"]

    def test_sizeof_grows(self):
        tree = BPlusTree(branching=8)
        empty = tree.sizeof()
        for i in range(500):
            tree.insert(i, i)
        assert tree.sizeof() > empty


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 100), st.sampled_from("abc")),
        max_size=300,
    )
)
def test_matches_reference_dict(pairs):
    """The tree behaves exactly like a sorted multimap."""
    tree = BPlusTree(branching=5)
    reference: dict[int, list[str]] = {}
    for key, value in pairs:
        tree.insert(key, value)
        reference.setdefault(key, []).append(value)
    tree.check_invariants()
    expected = [
        (k, v) for k in sorted(reference) for v in reference[k]
    ]
    assert list(tree.items()) == expected
    assert sorted(tree.get(50)) == sorted(reference.get(50, []))
    expected_range = [(k, v) for k, v in expected if 20 <= k < 60]
    assert list(tree.range(20, 60)) == expected_range


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=200),
    st.lists(st.integers(0, 50), max_size=100),
)
def test_insert_then_remove(inserted, removed):
    tree = BPlusTree(branching=5)
    reference: dict[int, int] = {}
    for key in inserted:
        tree.insert(key, key)
        reference[key] = reference.get(key, 0) + 1
    for key in removed:
        expected = reference.get(key, 0) > 0
        assert tree.remove(key, key) == expected
        if expected:
            reference[key] -= 1
    expected_items = [
        (k, k) for k in sorted(reference) for _ in range(reference[k])
    ]
    assert list(tree.items()) == expected_items
