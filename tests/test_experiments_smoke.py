"""Smoke tests for the benchmark experiment drivers at miniature scale.

These keep the per-figure drivers from rotting between benchmark runs; the
real shape assertions live in ``benchmarks/``.
"""

import pytest

from repro.bench import experiments


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.01")  # floors at 200 triples


def test_table1_driver():
    rows = experiments.experiment_table1()
    assert len(rows) == 4
    assert all(len(row) == 4 for row in rows)


def test_fig3b_driver():
    rows = experiments.experiment_fig3b()
    assert len(rows) == 5
    assert all(seconds >= 0 for _, seconds in rows)


def test_fig8a_driver():
    rows = experiments.experiment_fig8a()
    for _, standard, compressed, ratio in rows:
        assert 0 < compressed < standard
        assert 0 < ratio < 1


def test_fig8b_driver():
    result, n = experiments.experiment_fig8b()
    names = {name for name, _, _ in result}
    assert {"Raw Data", "Compressed MVBT", "MySQL", "Jena NG"} <= names


def test_fig9_sweep_driver():
    header, rows = experiments.experiment_fig9_sweep(
        "wikipedia", "selection", repeats=1
    )
    assert header[0] == "N"
    assert "RDF-TX" in header
    assert len(rows) == 4


def test_fig9_complex_driver():
    header, rows, n = experiments.experiment_fig9_complex(
        "govtrack", repeats=1
    )
    assert [row[0] for row in rows] == [3, 4, 5, 6, 7]


def test_fig10b_driver():
    rows = experiments.experiment_fig10b()
    assert len(rows) == 5


def test_fig10c_driver():
    rows, n = experiments.experiment_fig10c()
    assert rows[0][0] == "Standard MVBT"
    assert rows[1][0] == "Compressed MVBT"


def test_sec74_driver():
    result = experiments.experiment_sec74()
    assert 0 < result["fraction"] < 1
    assert result["optimize_ms_min"] <= result["optimize_ms_max"]
