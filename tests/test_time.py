"""Tests for the temporal domain (repro.model.time)."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.time import (
    MIN_TIME,
    NOW,
    Period,
    PeriodSet,
    TimeError,
    chronon_to_date,
    date_to_chronon,
    day_of,
    format_chronon,
    month_of,
    month_range,
    year_of,
    year_range,
)


class TestChronons:
    def test_epoch_is_zero(self):
        assert date_to_chronon(datetime.date(1970, 1, 1)) == 0

    def test_iso_string(self):
        assert date_to_chronon("1970-01-02") == 1

    def test_us_string_matches_paper_notation(self):
        assert date_to_chronon("01/02/1970") == 1

    def test_now_string(self):
        assert date_to_chronon("now") == NOW

    def test_bad_string_raises(self):
        with pytest.raises(TimeError):
            date_to_chronon("soon")

    def test_roundtrip(self):
        day = date_to_chronon("2013-09-30")
        assert chronon_to_date(day) == datetime.date(2013, 9, 30)

    def test_now_has_no_date(self):
        with pytest.raises(TimeError):
            chronon_to_date(NOW)

    def test_format(self):
        assert format_chronon(date_to_chronon("2013-09-30")) == "09/30/2013"
        assert format_chronon(NOW) == "now"

    @given(st.integers(min_value=0, max_value=60000))
    def test_date_roundtrip_property(self, chronon):
        assert date_to_chronon(chronon_to_date(chronon)) == chronon

    def test_calendar_functions(self):
        day = date_to_chronon("2013-09-30")
        assert year_of(day) == 2013
        assert month_of(day) == 9
        assert day_of(day) == 30

    def test_year_range_covers_whole_year(self):
        period = year_range(2012)  # leap year
        assert period.length() == 366
        assert year_of(period.first) == 2012
        assert year_of(period.last) == 2012

    def test_month_range(self):
        period = month_range(2013, 12)
        assert period.length() == 31
        assert month_of(period.first) == 12


class TestPeriod:
    def test_rejects_empty(self):
        with pytest.raises(TimeError):
            Period(5, 5)

    def test_rejects_inverted(self):
        with pytest.raises(TimeError):
            Period(7, 3)

    def test_from_closed(self):
        period = Period.from_closed(3, 7)
        assert period.start == 3 and period.end == 8
        assert period.first == 3 and period.last == 7

    def test_from_closed_live(self):
        period = Period.from_closed(3, NOW)
        assert period.is_live
        assert period.last == NOW

    def test_point(self):
        period = Period.point(9)
        assert period.length() == 1
        assert period.contains(9)
        assert not period.contains(10)

    def test_overlaps(self):
        assert Period(1, 5).overlaps(Period(4, 9))
        assert not Period(1, 5).overlaps(Period(5, 9))

    def test_meets(self):
        assert Period(1, 5).meets(Period(5, 9))
        assert not Period(1, 5).meets(Period(6, 9))

    def test_intersect(self):
        assert Period(1, 5).intersect(Period(3, 9)) == Period(3, 5)
        assert Period(1, 5).intersect(Period(5, 9)) is None

    def test_contains_operator(self):
        assert 3 in Period(1, 5)
        assert 5 not in Period(1, 5)

    def test_str_uses_paper_notation(self):
        period = Period.from_closed(
            date_to_chronon("2013-09-30"), NOW
        )
        assert str(period) == "[09/30/2013 ... now]"


@st.composite
def period_lists(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    periods = []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=200))
        length = draw(st.integers(min_value=1, max_value=50))
        periods.append(Period(start, start + length))
    return periods


class TestPeriodSet:
    def test_empty(self):
        ps = PeriodSet()
        assert ps.is_empty
        assert ps.total_length() == 0
        assert ps.max_length() == 0

    def test_coalesces_adjacent(self):
        ps = PeriodSet([Period(1, 5), Period(5, 9)])
        assert ps.periods == (Period(1, 9),)

    def test_coalesces_overlapping(self):
        ps = PeriodSet([Period(1, 6), Period(4, 9), Period(20, 30)])
        assert ps.periods == (Period(1, 9), Period(20, 30))

    def test_first_last(self):
        ps = PeriodSet([Period(10, 20), Period(1, 5)])
        assert ps.first() == 1
        assert ps.last() == 19

    def test_first_of_empty_raises(self):
        with pytest.raises(TimeError):
            PeriodSet().first()

    def test_lengths(self):
        ps = PeriodSet([Period(1, 5), Period(10, 30)])
        assert ps.max_length() == 20
        assert ps.total_length() == 24

    def test_intersect(self):
        a = PeriodSet([Period(1, 10), Period(20, 30)])
        b = PeriodSet([Period(5, 25)])
        assert a.intersect(b).periods == (Period(5, 10), Period(20, 25))

    def test_union(self):
        a = PeriodSet([Period(1, 5)])
        b = PeriodSet([Period(5, 9)])
        assert a.union(b).periods == (Period(1, 9),)

    def test_restrict(self):
        ps = PeriodSet([Period(1, 10), Period(20, 30)])
        assert ps.restrict(Period(5, 22)).periods == (
            Period(5, 10),
            Period(20, 22),
        )

    @given(period_lists(), period_lists())
    def test_intersect_matches_chronon_sets(self, left, right):
        a, b = PeriodSet(left), PeriodSet(right)
        chronons_a = {t for p in left for t in range(p.start, p.end)}
        chronons_b = {t for p in right for t in range(p.start, p.end)}
        expected = chronons_a & chronons_b
        got = {
            t
            for p in a.intersect(b)
            for t in range(p.start, p.end)
        }
        assert got == expected

    @given(period_lists())
    def test_coalescing_is_canonical(self, periods):
        ps = PeriodSet(periods)
        # Disjoint, ordered, non-adjacent.
        for prev, cur in zip(ps.periods, ps.periods[1:]):
            assert prev.end < cur.start
        # Same chronon set as the input.
        raw = {t for p in periods for t in range(p.start, p.end)}
        got = {t for p in ps for t in range(p.start, p.end)}
        assert got == raw

    def test_hashable_and_eq(self):
        a = PeriodSet([Period(1, 5), Period(3, 9)])
        b = PeriodSet([Period(1, 9)])
        assert a == b
        assert hash(a) == hash(b)
