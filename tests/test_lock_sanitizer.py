"""The runtime lock-order sanitizer (``repro.service.sanitizer``).

Every scenario is deterministic: where two "threads" are needed to
establish opposite acquisition orders, the first runs to completion and
is joined before the second starts — the witness graph is process-global
and persistent, so interleaving is unnecessary.
"""

import threading
import time

import pytest

from repro.service import sanitizer as san
from repro.service.locks import ReadWriteLock
from repro.service.sanitizer import (
    LockSanitizerError,
    SanitizedLock,
    sanitized_lock,
)
from repro.service.store import TemporalStore


@pytest.fixture
def tracker():
    """Enable the sanitizer with a clean slate; restore prior state."""
    was_enabled = san.enabled()
    san.enable()
    san.TRACKER.reset()
    yield san.TRACKER
    san.TRACKER.reset()
    if not was_enabled:
        san.disable()


def _lock(role, allow_blocking=False):
    return sanitized_lock(threading.Lock(), role, allow_blocking)


# ------------------------------------------------------------ construction


def test_disabled_returns_raw_lock():
    was_enabled = san.enabled()
    san.disable()
    try:
        raw = threading.Lock()
        assert sanitized_lock(raw, "t.role") is raw
    finally:
        if was_enabled:
            san.enable()


def test_enabled_wraps_lock(tracker):
    lock = _lock("t.role")
    assert isinstance(lock, SanitizedLock)
    with lock:
        assert tracker.held_roles() == ("t.role",)
    assert tracker.held_roles() == ()


def test_check_blocking_is_noop_when_disabled():
    was_enabled = san.enabled()
    san.disable()
    try:
        san.check_blocking("anything")  # must not raise
    finally:
        if was_enabled:
            san.enable()


# ------------------------------------------------------------ order cycles


def test_opposite_orders_across_threads_raise(tracker):
    a = _lock("t.a")
    b = _lock("t.b")

    def first_order():
        with a:
            with b:
                pass

    worker = threading.Thread(target=first_order)
    worker.start()
    worker.join()
    assert tracker.edges() == {"t.a": {"t.b"}}

    with b:
        with pytest.raises(LockSanitizerError, match="lock-order cycle"):
            a.acquire()


def test_cycle_report_names_the_reverse_witness(tracker):
    a = _lock("t.a")
    b = _lock("t.b")
    with a:
        with b:
            pass
    with b:
        with pytest.raises(LockSanitizerError) as excinfo:
            a.acquire()
    message = str(excinfo.value)
    assert "t.a -> t.b" in message  # the previously observed order
    assert "thread" in message


def test_consistent_order_never_raises(tracker):
    a = _lock("t.a")
    b = _lock("t.b")
    for _ in range(3):
        with a:
            with b:
                pass
    assert tracker.edges() == {"t.a": {"t.b"}}


def test_transitive_cycle_detected(tracker):
    a, b, c = _lock("t.a"), _lock("t.b"), _lock("t.c")
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with pytest.raises(LockSanitizerError, match="t.a -> t.b"):
            a.acquire()


def test_recursive_acquisition_raises(tracker):
    outer = _lock("t.same")
    inner = _lock("t.same")  # distinct instance, same role
    with outer:
        with pytest.raises(LockSanitizerError, match="recursive"):
            inner.acquire()


# ------------------------------------------------------- blocking-under-lock


def test_blocking_under_forbidden_lock_raises(tracker):
    pool = _lock("t.pool", allow_blocking=False)
    with pool:
        with pytest.raises(LockSanitizerError, match="t.pool"):
            san.check_blocking("protocol.send_message")


def test_blocking_under_allowed_lock_passes(tracker):
    writer = _lock("t.writer", allow_blocking=True)
    with writer:
        san.check_blocking("protocol.send_message")  # must not raise


def test_time_sleep_is_instrumented(tracker):
    pool = _lock("t.pool", allow_blocking=False)
    with pool:
        with pytest.raises(LockSanitizerError, match="time.sleep"):
            time.sleep(0.001)
    time.sleep(0)  # fine once released


# --------------------------------------------------------- ReadWriteLock


def test_rw_lock_reports_read_and_write_sides(tracker):
    rw = ReadWriteLock()
    with rw.read_locked():
        assert tracker.held_roles() == ("store.rw",)
        with pytest.raises(LockSanitizerError):
            san.check_blocking("os.fsync")
    with rw.write_locked():
        assert tracker.held_roles() == ("store.rw",)
    assert tracker.held_roles() == ()


def test_rw_nesting_under_writer_records_the_edge(tracker):
    writer = _lock("t.writer", allow_blocking=True)
    rw = ReadWriteLock()
    with writer:
        with rw.write_locked():
            pass
    assert tracker.edges()["t.writer"] == {"store.rw"}


# ------------------------------------------------------------- integration


def test_store_update_records_writer_before_rw(tracker, tmp_path):
    store = TemporalStore(tmp_path / "store")
    try:
        store.insert("s", "p", "o", 1)
        assert store.query("SELECT ?o {s p ?o ?t}").rows
    finally:
        store.close()
    edges = tracker.edges()
    assert "store.rw" in edges.get("store.writer", set())
    # Nothing ever observed the reverse order.
    assert "store.writer" not in edges.get("store.rw", set())
