"""TemporalStore: durability, recovery, validation, concurrency.

The centerpiece is the crash-recovery property test: a child process
applies a deterministic update stream (checkpoint in the middle), is
SIGKILLed without any shutdown, and the recovered store must answer a
query suite identically to an uncrashed in-process run of the same stream.
"""

import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.model import TemporalGraph, date_to_chronon
from repro.mvbt.tree import DuplicateKeyError, TimeOrderError
from repro.service import StoreError, TemporalStore, read_records
from repro.service.wal import WAL_MAGIC

D = date_to_chronon

QUERIES = [
    "SELECT ?o ?t {UC president ?o ?t}",
    "SELECT ?s ?o {?s president ?o ?t}",
    "SELECT ?p ?o {UC ?p ?o ?t . FILTER(YEAR(?t) = 2015)}",
    "SELECT ?o {UC budget ?o ?t}",
    "SELECT ?s {?s member Senate ?t}",
]


def fixture_graph():
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UC", "budget", "25.46", D("01/30/2015"))
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"),
          D("07/01/2014"))
    g.add("UM", "president", "Mark_Schlissel", D("07/01/2014"))
    return g


def update_stream(n):
    """A deterministic stream of n valid updates past the fixture horizon."""
    base = D("01/01/2016")
    updates = []
    for i in range(n):
        t = base + 2 * i
        if i % 3 == 2:
            # Delete the member fact inserted two steps earlier.
            updates.append(("delete", f"Person_{i - 2}", "member", "Senate",
                            t))
        else:
            updates.append(("insert", f"Person_{i}", "member", "Senate", t))
    return updates


def apply_stream(store, updates):
    for op, s, p, o, t in updates:
        if op == "insert":
            store.insert(s, p, o, t)
        else:
            store.delete(s, p, o, t)


def result_fingerprint(store):
    return [
        sorted(
            tuple(sorted((k, str(v)) for k, v in row.items()))
            for row in store.query(q).rows
        )
        for q in QUERIES
    ]


def _crash_child(directory, n):
    """Child-process body for the crash test (see TestCrashRecovery)."""
    store = TemporalStore(directory, group_size=4)
    store.load_dataset(fixture_graph())
    updates = update_stream(n)
    apply_stream(store, updates[: n // 2])
    store.checkpoint()
    apply_stream(store, updates[n // 2 :])
    store.sync()  # every acknowledged update is now on disk
    print("READY", flush=True)
    signal.pause()  # wait for the SIGKILL; no clean shutdown ever runs


class TestDurability:
    def test_updates_survive_reopen(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.load_dataset(fixture_graph())
            store.insert("UC", "chancellor", "Carol_Christ", D("07/01/2017"))
            lsn = store.delete("UC", "president", "Janet_Napolitano",
                               D("08/01/2020"))
        with TemporalStore(tmp_path) as store:
            assert store.revision == lsn
            result = store.query("SELECT ?o {UC chancellor ?o ?t}")
            assert result.column("o") == ["Carol_Christ"]
            result = store.query(
                "SELECT ?t {UC president Janet_Napolitano ?t}"
            )
            (row,) = result
            (period,) = list(row["t"])
            assert period.end == D("08/01/2020")

    def test_checkpoint_truncates_wal(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.load_dataset(fixture_graph())
            store.insert("a", "b", "c", D("01/01/2016"))
            assert len(read_records(store.wal_path)) == 1
            store.checkpoint()
            assert read_records(store.wal_path) == []
            # LSNs keep counting after truncation.
            assert store.insert("d", "e", "f", D("01/02/2016")) == 2

    def test_auto_checkpoint(self, tmp_path):
        with TemporalStore(tmp_path, checkpoint_every=3) as store:
            store.load_dataset(fixture_graph())
            for i in range(7):
                store.insert(f"s{i}", "p", "o", D("01/01/2016") + i)
            # 7 updates with checkpoint_every=3: checkpoints after 3 and 6,
            # one record left in the log.
            assert len(read_records(store.wal_path)) == 1

    def test_load_dataset_requires_empty(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.load_dataset(fixture_graph())
            with pytest.raises(StoreError):
                store.load_dataset(fixture_graph())
        with TemporalStore(tmp_path) as store:  # recovered, still non-empty
            with pytest.raises(StoreError):
                store.load_dataset(fixture_graph())

    def test_closed_store_rejects_updates(self, tmp_path):
        store = TemporalStore(tmp_path)
        store.close()
        with pytest.raises(StoreError):
            store.insert("a", "b", "c", D("01/01/2016"))
        with pytest.raises(StoreError):
            store.checkpoint()
        store.close()  # idempotent

    def test_fresh_store_is_queryable(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            assert store.revision == 0
            assert store.query("SELECT ?s {?s p ?o ?t}").rows == []


class TestValidation:
    def test_duplicate_insert_rejected_and_not_logged(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.insert("a", "b", "c", D("01/01/2016"))
            with pytest.raises(DuplicateKeyError):
                store.insert("a", "b", "c", D("01/02/2016"))
            assert len(read_records(store.wal_path)) == 1

    def test_delete_of_dead_fact_rejected(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            with pytest.raises(KeyError):
                store.delete("ghost", "b", "c", D("01/01/2016"))

    def test_delete_not_after_start_rejected(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            t = D("01/01/2016")
            store.insert("a", "b", "c", t)
            with pytest.raises(TimeOrderError):
                store.delete("a", "b", "c", t)

    def test_update_before_watermark_rejected(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.insert("a", "b", "c", D("01/01/2016"))
            with pytest.raises(TimeOrderError):
                store.insert("x", "y", "z", D("01/01/2015"))

    def test_update_time_out_of_range(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            with pytest.raises(ValueError):
                store.insert("a", "b", "c", -5)
            with pytest.raises(ValueError):
                store.insert("a", "b", "c", 2**31 - 1)  # NOW is reserved


class TestCrashRecovery:
    def test_sigkill_then_recover_matches_uncrashed_run(self, tmp_path):
        n = 24
        crash_dir = tmp_path / "crashed"
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "from test_service_store import _crash_child; "
                f"_crash_child({str(crash_dir)!r}, {n})",
            ],
            cwd=str(Path(__file__).parent),
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).parents[1] / "src"),
            },
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            line = child.stdout.readline()
            assert line.strip() == "READY", f"child failed: {line!r}"
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=30)

        # The uncrashed reference run, same deterministic stream.
        with TemporalStore(tmp_path / "reference") as reference:
            reference.load_dataset(fixture_graph())
            apply_stream(reference, update_stream(n))
            expected = result_fingerprint(reference)
            expected_revision = reference.revision

        with TemporalStore(crash_dir) as recovered:
            assert recovered.revision == expected_revision
            assert result_fingerprint(recovered) == expected
            # The recovered store accepts further updates.
            recovered.insert("after", "the", "crash", D("01/01/2020"))

    def test_recovery_skips_records_already_in_snapshot(self, tmp_path):
        # Simulate a crash *between* snapshot rename and WAL truncation:
        # the WAL still holds records the snapshot already contains.
        with TemporalStore(tmp_path, group_size=1) as store:
            store.load_dataset(fixture_graph())
            store.insert("a", "b", "c", D("01/01/2016"))
            store.insert("d", "e", "f", D("01/02/2016"))
            wal_with_records = store.wal_path.read_bytes()
            store.checkpoint()  # snapshot now includes both records
            store.wal_path.write_bytes(wal_with_records)  # un-truncate
        with TemporalStore(tmp_path) as store:
            assert store.revision == 2
            # No double-apply: each fact matched exactly once.
            assert len(store.query("SELECT ?o {a b ?o ?t}").rows) == 1
            assert store.live_facts == 5  # 3 fixture live + 2 inserted


class TestConcurrency:
    def test_concurrent_readers_during_write_burst(self, tmp_path):
        with TemporalStore(tmp_path, group_size=8) as store:
            store.load_dataset(fixture_graph())
            stop = threading.Event()
            errors = []
            revisions = []

            def reader():
                while not stop.is_set():
                    try:
                        result = store.query(
                            "SELECT ?s {?s member Senate ?t}"
                        )
                        revisions.append(result.revision)
                    except Exception as error:  # noqa: BLE001
                        errors.append(error)
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            try:
                apply_stream(store, update_stream(60))
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=30)
            assert errors == []
            # Readers observed monotonically growing revisions overall.
            assert revisions
            assert max(revisions) <= store.revision

    def test_revision_pins_to_read_epoch(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.load_dataset(fixture_graph())
            r1 = store.query(QUERIES[0]).revision
            store.insert("x", "y", "z", D("01/01/2016"))
            r2 = store.query(QUERIES[0]).revision
            assert (r1, r2) == (0, 1)


class TestFiles:
    def test_store_directory_layout(self, tmp_path):
        with TemporalStore(tmp_path) as store:
            store.load_dataset(fixture_graph())
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["store.snap", "store.wal"]
        assert (tmp_path / "store.wal").read_bytes() == WAL_MAGIC
