"""Engine integration of the synchronized join (Section 5.2.2)."""

from repro.datasets import wikipedia
from repro.engine import RDFTX
from repro.engine.operators import synchronized_join_applicable
from repro.engine.patterns import translate_pattern
from repro.sparqlt import parse


def build_plans(graph, text):
    query = parse(text)
    return [
        translate_pattern(p, graph.dictionary, query.filter_conjuncts())
        for p in query.patterns
    ]


class TestApplicability:
    def test_wide_predicate_star_qualifies(self):
        graph = wikipedia.generate(500, seed=2).graph
        plans = build_plans(
            graph, "SELECT ?s {?s population ?a ?t . ?s mayor ?b ?t}"
        )
        shared = plans[0].pattern.variables() & plans[1].pattern.variables()
        assert synchronized_join_applicable(plans[0], plans[1], shared)

    def test_windowed_scan_disqualifies(self):
        graph = wikipedia.generate(500, seed=2).graph
        plans = build_plans(
            graph,
            "SELECT ?s {?s population ?a ?t . ?s mayor ?b ?t . "
            "FILTER(YEAR(?t) = 2010)}",
        )
        shared = plans[0].pattern.variables() & plans[1].pattern.variables()
        assert not synchronized_join_applicable(plans[0], plans[1], shared)

    def test_different_time_vars_disqualify(self):
        graph = wikipedia.generate(500, seed=2).graph
        plans = build_plans(
            graph, "SELECT ?s {?s population ?a ?t1 . ?s mayor ?b ?t2}"
        )
        shared = plans[0].pattern.variables() & plans[1].pattern.variables()
        assert not synchronized_join_applicable(plans[0], plans[1], shared)

    def test_subject_anchored_disqualifies(self):
        dataset = wikipedia.generate(500, seed=2)
        graph = dataset.graph
        city = next(
            s for s, c in dataset.category_of.items() if c == "City"
        )
        plans = build_plans(
            graph,
            f"SELECT ?a {{{city} population ?a ?t . {city} mayor ?b ?t}}",
        )
        shared = plans[0].pattern.variables() & plans[1].pattern.variables()
        assert not synchronized_join_applicable(plans[0], plans[1], shared)


class TestEquivalence:
    def test_sync_join_matches_hash_join(self):
        """The synchronized-join path returns exactly the hash-join rows."""
        graph = wikipedia.generate(2500, seed=9).graph
        engine = RDFTX.from_graph(graph)
        query = "SELECT ?s ?a ?b ?t {?s population ?a ?t . ?s mayor ?b ?t}"
        plans = build_plans(graph, query)
        shared = plans[0].pattern.variables() & plans[1].pattern.variables()
        assert synchronized_join_applicable(plans[0], plans[1], shared)
        with_sync = sorted(map(repr, engine.query(query)))

        # Disable the fast path by using distinct (then equated) time vars
        # is semantically different; instead compare against a baseline.
        from repro.baselines import RDBMSBaseline

        baseline = RDBMSBaseline.from_graph(graph)
        expected = sorted(map(repr, baseline.query(query)))
        assert with_sync == expected
