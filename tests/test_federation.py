"""repro.obs.federation + repro.obs.events: merge math and the event ring.

The merge functions are pure dict math over registry snapshot payloads,
so everything here runs without a cluster.  The histogram property test
is the load-bearing one: merging N member snapshots bucket-wise must
answer exactly what one histogram observing the union of the samples
would — otherwise federated p95s drift from per-process ones.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import events as obs_events
from repro.obs import metrics
from repro.obs.federation import (
    build_groups,
    merge_counters,
    merge_gauges,
    merge_histograms,
    merge_snapshots,
    merge_timers,
    render_prometheus_cluster,
)
from repro.obs.metrics import Histogram, TimerStat


# ----------------------------------------------------------- counter/gauge


def test_merge_counters_sums_keywise():
    merged = merge_counters([
        {"a.b": 2, "c.d": 1},
        {"a.b": 3},
        {"e.f": 7},
    ])
    assert merged == {"a.b": 5, "c.d": 1, "e.f": 7}
    assert list(merged) == sorted(merged)


def test_merge_gauges_takes_worst_member():
    merged = merge_gauges([
        {"lag": 0.5, "depth": 3},
        {"lag": 2.5, "depth": 1},
    ])
    assert merged == {"depth": 3.0, "lag": 2.5}


def test_merge_timers_folds_and_recomputes_mean():
    a = TimerStat("t")
    b = TimerStat("t")
    a.observe(0.010)
    a.observe(0.030)
    b.observe(0.100)
    merged = merge_timers([a.as_dict(), b.as_dict()])
    assert merged["count"] == 3
    assert abs(merged["total_ms"] - 140.0) < 1e-6
    assert abs(merged["mean_ms"] - 140.0 / 3) < 1e-6
    assert abs(merged["min_ms"] - 10.0) < 1e-6
    assert abs(merged["max_ms"] - 100.0) < 1e-6


def test_merge_timers_ignores_empty_members_min():
    empty = TimerStat("t").as_dict()
    busy = TimerStat("t")
    busy.observe(0.5)
    merged = merge_timers([empty, busy.as_dict()])
    assert merged["count"] == 1
    assert abs(merged["min_ms"] - 500.0) < 1e-6


# ------------------------------------------------- histogram property test


@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=20000.0,
                  allow_nan=False, allow_infinity=False),
        min_size=0, max_size=120,
    ),
    members=st.integers(min_value=1, max_value=5),
    seed=st.randoms(use_true_random=False),
)
def test_merged_histogram_equals_union_of_samples(samples, members, seed):
    """merge(N member snapshots) == one histogram over all the samples."""
    union = Histogram("h")
    shards = [Histogram("h") for _ in range(members)]
    for value in samples:
        union.observe(value)
        seed.choice(shards).observe(value)
    merged = merge_histograms([shard.as_dict() for shard in shards])
    expected = union.as_dict()
    assert merged["count"] == expected["count"]
    assert merged["overflow"] == expected["overflow"]
    assert abs(merged["sum_ms"] - expected["sum_ms"]) < 1e-6
    assert merged["buckets"] == expected["buckets"]
    for q in ("p50_ms", "p95_ms", "p99_ms"):
        assert abs(merged[q] - expected[q]) < 1e-9, q


def test_merge_histograms_unions_different_ladders():
    a = Histogram("h", bounds=(1.0, 10.0))
    b = Histogram("h", bounds=(5.0, 50.0))
    a.observe(0.5)
    b.observe(30.0)
    merged = merge_histograms([a.as_dict(), b.as_dict()])
    assert merged["count"] == 2
    assert [bound for bound, _ in merged["buckets"]] == [1.0, 5.0, 10.0,
                                                         50.0]
    assert merged["buckets"][-1][1] == 2


# ----------------------------------------------------------- group building


def _member(shard, role, counters=None, *, alive=True, enabled=True):
    return {
        "shard": shard, "role": role, "alive": alive, "enabled": enabled,
        "metrics": {"counters": counters or {}},
    }


def test_build_groups_merges_replicas_and_skips_dead():
    groups = build_groups([
        {"role": "coordinator", "alive": True, "enabled": True,
         "metrics": {"counters": {"q": 1}}},
        _member(0, "shard", {"cluster.worker.requests": 4}),
        _member(0, "replica", {"cluster.worker.requests": 2}),
        _member(0, "replica", {"cluster.worker.requests": 3}),
        _member(1, "shard", {"cluster.worker.requests": 9}),
        _member(1, "replica", None, alive=False),
        _member(1, "replica", None, enabled=False),
    ])
    by_label = {
        tuple(sorted(g["labels"].items())): g for g in groups
    }
    replicas_0 = by_label[(("role", "replica"), ("shard", "0"))]
    assert replicas_0["members"] == 2
    assert replicas_0["metrics"]["counters"] == {
        "cluster.worker.requests": 5
    }
    assert (("role", "replica"), ("shard", "1")) not in by_label
    coordinator = by_label[(("role", "coordinator"),)]
    assert coordinator["metrics"]["counters"] == {"q": 1}


def test_merge_snapshots_shape():
    merged = merge_snapshots([
        {"counters": {"a": 1}, "gauges": {"g": 2.0},
         "timers": {"t": TimerStat("t").as_dict()},
         "histograms": {"h": Histogram("h").as_dict()}},
        {"counters": {"a": 1}},
    ])
    assert merged["counters"] == {"a": 2}
    assert merged["gauges"] == {"g": 2.0}
    assert set(merged["timers"]) == {"t"}
    assert set(merged["histograms"]) == {"h"}


# ------------------------------------------------------ prometheus renderer


def _federated_fixture():
    hist = Histogram("cluster.coordinator.rpc_ms")
    hist.observe(3.0)
    return {
        "scope": "cluster",
        "watermark": 7,
        "members": [
            {"role": "coordinator", "alive": True, "enabled": True,
             "metrics": {}},
            {"shard": 0, "role": "shard", "pid": 11, "alive": True,
             "enabled": True, "metrics": {}},
            {"shard": 0, "role": "replica", "replica": 0, "pid": 12,
             "alive": True, "enabled": True, "metrics": {},
             "lag_lsn": 3, "lag_seconds": 0.25},
            {"shard": 1, "role": "replica", "replica": 0, "pid": 13,
             "alive": False, "enabled": False, "metrics": {}},
        ],
        "groups": [
            {"labels": {"shard": "0", "role": "shard"}, "members": 1,
             "metrics": {
                 "counters": {"cluster.worker.requests": 4},
                 "gauges": {},
                 "timers": {},
                 "histograms": {"cluster.coordinator.rpc_ms":
                                hist.as_dict()},
             }},
            {"labels": {"shard": "0", "role": "replica"}, "members": 1,
             "metrics": {
                 "counters": {"cluster.worker.replicated": 6},
                 "gauges": {}, "timers": {}, "histograms": {},
             }},
        ],
    }


def test_render_prometheus_cluster_pins_label_order():
    text = render_prometheus_cluster(_federated_fixture())
    # The canonical label order is shard,role — pinned, not sorted.
    assert ('repro_cluster_worker_replicated_total'
            '{shard="0",role="replica"} 6') in text
    assert ('repro_cluster_worker_requests_total'
            '{shard="0",role="shard"} 4') in text


def test_render_prometheus_cluster_lag_and_liveness_series():
    text = render_prometheus_cluster(_federated_fixture())
    assert ('repro_cluster_lag_lsn'
            '{shard="0",role="replica",replica="0"} 3') in text
    assert ('repro_cluster_lag_seconds'
            '{shard="0",role="replica",replica="0"} 0.25') in text
    assert 'repro_cluster_member_up{role="coordinator"} 1' in text
    assert ('repro_cluster_member_up'
            '{shard="1",role="replica",replica="0"} 0') in text
    # A dead replica reports no lag series at all.
    assert 'lag_lsn{shard="1"' not in text


def test_render_prometheus_cluster_histogram_buckets_labeled():
    text = render_prometheus_cluster(_federated_fixture())
    assert ('repro_cluster_coordinator_rpc_ms_bucket'
            '{shard="0",role="shard",le="5"} 1') in text
    assert ('repro_cluster_coordinator_rpc_ms_bucket'
            '{shard="0",role="shard",le="+Inf"} 1') in text
    assert ('repro_cluster_coordinator_rpc_ms_count'
            '{shard="0",role="shard"} 1') in text


# -------------------------------------------------------------- event ring


def test_event_log_records_and_counts():
    log = obs_events.EventLog(capacity=4)
    log.record("cluster.event.promoted", shard_id=0, pid=42)
    log.record("cluster.event.resync", level="warning", shard_id=1)
    recent = log.recent()
    assert [e["event"] for e in recent] == [
        "cluster.event.resync", "cluster.event.promoted"
    ]
    assert recent[0]["level"] == "warning"
    assert recent[1]["shard_id"] == 0
    assert all("ts" in e for e in recent)
    assert log.counts() == {
        "cluster.event.promoted": 1, "cluster.event.resync": 1
    }
    assert len(log) == 2


def test_event_log_ring_is_bounded_but_counts_are_lifetime():
    log = obs_events.EventLog(capacity=3)
    for _ in range(10):
        log.record("cluster.event.resync")
    assert len(log) == 3
    assert log.counts() == {"cluster.event.resync": 10}


def test_event_log_drops_none_fields():
    log = obs_events.EventLog()
    log.record("cluster.event.promoted", trace_id=None, shard_id=2)
    (event,) = log.recent()
    assert "trace_id" not in event
    assert event["shard_id"] == 2


def test_event_log_disabled_records_nothing():
    log = obs_events.EventLog()
    metrics.set_enabled(False)
    try:
        log.record("cluster.event.promoted")
    finally:
        metrics.set_enabled(True)
    assert log.recent() == []
    assert log.counts() == {}
