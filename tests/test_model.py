"""Tests for triples, dictionary encoding, and temporal graphs."""

import pytest

from repro.model import (
    Dictionary,
    DictionaryError,
    NOW,
    Period,
    TemporalGraph,
    TemporalTriple,
    Triple,
    date_to_chronon,
)


class TestTriple:
    def test_iteration(self):
        t = Triple("UC", "president", "Mark_Yudof")
        assert list(t) == ["UC", "president", "Mark_Yudof"]

    def test_str(self):
        t = Triple("UC", "president", "Mark_Yudof")
        assert str(t) == "(UC, president, Mark_Yudof)"


class TestTemporalTriple:
    def test_make_live(self):
        t = TemporalTriple.make("UC", "president", "Napolitano", 100)
        assert t.is_live
        assert t.period == Period(100, NOW)

    def test_static_part(self):
        t = TemporalTriple.make("UC", "president", "Napolitano", 100, 200)
        assert t.triple == Triple("UC", "president", "Napolitano")

    def test_str_matches_paper_rendering(self):
        start = date_to_chronon("09/30/2013")
        t = TemporalTriple.make(
            "University_of_California", "president", "Janet_Napolitano", start
        )
        assert str(t).endswith("[09/30/2013 ... now]")


class TestDictionary:
    def test_ids_are_dense_from_one(self):
        d = Dictionary()
        assert d.encode("a") == 1
        assert d.encode("b") == 2
        assert d.encode("a") == 1

    def test_decode(self):
        d = Dictionary()
        ident = d.encode("University_of_California")
        assert d.decode(ident) == "University_of_California"

    def test_decode_unknown_raises(self):
        d = Dictionary()
        with pytest.raises(DictionaryError):
            d.decode(42)
        with pytest.raises(DictionaryError):
            d.decode(0)

    def test_lookup_without_assign(self):
        d = Dictionary()
        assert d.lookup("missing") is None
        d.encode("present")
        assert d.lookup("present") == 1

    def test_bounds(self):
        d = Dictionary()
        d.encode_many(["a", "b", "c"])
        assert d.max_id == 3
        assert d.upper_bound == 4
        assert len(d) == 3
        assert "b" in d

    def test_sizeof_grows(self):
        d = Dictionary()
        empty = d.sizeof()
        d.encode_many(f"term-{i}" for i in range(100))
        assert d.sizeof() > empty


class TestTemporalGraph:
    @pytest.fixture
    def uc_graph(self):
        """The University of California history of Table 2."""
        g = TemporalGraph()
        day = date_to_chronon
        g.add("UC", "president", "Mark_Yudof",
              day("06/16/2008"), day("09/30/2013"))
        g.add("UC", "president", "Janet_Napolitano", day("09/30/2013"))
        g.add("UC", "endowment", "10.3", day("07/01/2013"), day("07/01/2014"))
        g.add("UC", "endowment", "13.1", day("07/01/2014"))
        g.add("UC", "undergraduate", "184562",
              day("05/14/2013"), day("01/30/2015"))
        g.add("UC", "undergraduate", "188300", day("01/30/2015"))
        return g

    def test_len(self, uc_graph):
        assert len(uc_graph) == 6

    def test_decode_roundtrip(self, uc_graph):
        decoded = list(uc_graph.triples())
        assert any(t.object == "Janet_Napolitano" for t in decoded)

    def test_history_of_subject(self, uc_graph):
        history = uc_graph.history_of("UC", "president")
        assert [t.object for t in history] == [
            "Mark_Yudof",
            "Janet_Napolitano",
        ]

    def test_history_of_unknown(self, uc_graph):
        assert uc_graph.history_of("MIT") == []
        assert uc_graph.history_of("UC", "nosuch") == []

    def test_validity_when_query(self, uc_graph):
        """Example 1: when did Napolitano serve as president."""
        ps = uc_graph.validity("UC", "president", "Janet_Napolitano")
        assert len(ps) == 1
        assert ps.first() == date_to_chronon("09/30/2013")
        assert ps.periods[0].is_live

    def test_validity_unknown_term(self, uc_graph):
        assert uc_graph.validity("UC", "president", "Nobody").is_empty

    def test_predicate_counts(self, uc_graph):
        counts = uc_graph.predicate_counts()
        pid = uc_graph.dictionary.lookup("president")
        assert counts[pid] == 2

    def test_distinct_subjects(self, uc_graph):
        assert uc_graph.distinct_subjects() == 1

    def test_raw_size_positive(self, uc_graph):
        assert uc_graph.raw_size() > 6 * 16
