"""The interprocedural analyses: call graph, lock flow, protocol drift.

The fixture corpus in ``test_lint`` proves each rule fires and stays
silent on canned shapes; these tests pin down the *interprocedural*
behaviour — witness chains, cycle reports naming both paths, and RL015
catching a field rename seeded into a copy of the real coordinator and
worker sources.
"""

import json
import shutil
from pathlib import Path

from repro.lint import RULES_BY_ID, run_lint
from repro.lint.callgraph import module_name, project_index
from repro.lint.checker import load_module, main
from repro.lint.lockflow import BlockingReach, LockFlow, find_cycles

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
CLUSTER_SRC = REPO_ROOT / "src" / "repro" / "cluster"


def _module(path: Path):
    loaded = load_module(path)
    assert not isinstance(loaded, type(None))
    return loaded


# ------------------------------------------------------------- call graph


def test_module_name_resolution():
    assert module_name("src/repro/cluster/worker.py") == "repro.cluster.worker"
    assert module_name("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name("scratch/tool.py") == "tool"


def test_self_method_calls_resolve_across_hops():
    module = _module(FIXTURES / "rl013_pos.py")
    index = project_index([module])
    info = index.function_at("repro.cluster.coordinator.Coordinator.update")
    assert info is not None
    targets = {site.target for site in info.calls if site.target}
    assert "repro.cluster.coordinator.Coordinator._flush_all" in targets


def test_blocking_reach_reports_the_witness_chain():
    module = _module(FIXTURES / "rl013_pos.py")
    index = project_index([module])
    reach = BlockingReach(index)
    hit = reach.reach("repro.cluster.coordinator.Coordinator._flush_all")
    assert hit is not None
    desc, chain = hit
    assert desc == "time.sleep()"
    assert chain == ("repro.cluster.coordinator.Coordinator._push",)


def test_rl013_finding_names_the_chain():
    findings = run_lint(
        [str(FIXTURES / "rl013_pos.py")], rules=[RULES_BY_ID["RL013"]]
    )
    two_hop = [f for f in findings if "->" in f.message]
    assert len(two_hop) == 1
    assert "Coordinator._flush_all -> Coordinator._push" in two_hop[0].message
    assert "self._writer" in two_hop[0].message


# -------------------------------------------------------------- lock flow


def test_lock_order_cycle_reports_both_witness_paths():
    findings = run_lint(
        [str(FIXTURES / "rl014_pos.py")], rules=[RULES_BY_ID["RL014"]]
    )
    assert len(findings) == 1
    message = findings[0].message
    # Both legs of the cycle, each with its own witness location.
    assert "Store._writer -> Store._maint" in message
    assert "Store._maint -> Store._writer" in message
    # (the fixture's scope pragma sets the logical path rules report)
    assert message.count("src/repro/service/store.py") == 2
    # The interprocedural leg names the call chain to the acquisition.
    assert (
        "repro.service.store.Store.compact -> "
        "repro.service.store.Store._flush"
    ) in message


def test_lockflow_discovers_and_orders_locks():
    module = _module(FIXTURES / "rl014_pos.py")
    index = project_index([module])
    flow = LockFlow(index)
    labels = {lock.label for lock in flow.locks}
    assert labels == {"Store._writer", "Store._maint"}
    edges = flow.order_edges()
    cycles = list(find_cycles(edges))
    assert len(cycles) == 1


# -------------------------------------------------- RL015 on real sources


def _lint_cluster_copy(tmp_path, mutate=None):
    workdir = tmp_path / "cluster"
    workdir.mkdir()
    for name in ("coordinator.py", "worker.py"):
        shutil.copy(CLUSTER_SRC / name, workdir / name)
    if mutate:
        target = workdir / "worker.py"
        target.write_text(mutate(target.read_text()))
    return run_lint([str(workdir)], rules=[RULES_BY_ID["RL015"]])


def test_real_cluster_sources_conform(tmp_path):
    assert _lint_cluster_copy(tmp_path) == []


def test_seeded_field_rename_is_caught(tmp_path):
    findings = _lint_cluster_copy(
        tmp_path,
        mutate=lambda text: text.replace(
            'payload["subject"]', 'payload["subject_iri"]'
        ),
    )
    messages = [f.message for f in findings]
    assert any("subject_iri" in m and "missing" in m for m in messages), messages
    assert any("subject" in m and "never read" in m for m in messages), messages
    # Every sender of the drifted op is reported, in the coordinator.
    assert all(f.path.endswith("coordinator.py") for f in findings)


def test_seeded_unknown_op_is_caught(tmp_path):
    findings = _lint_cluster_copy(
        tmp_path,
        mutate=lambda text: text.replace('"checkpoint": ', '"checkpoint2": '),
    )
    assert any(
        "'checkpoint'" in f.message and "not handled" in f.message
        for f in findings
    ), [f.message for f in findings]


# ---------------------------------------------------------- baseline prune


def test_prune_baseline_drops_fixed_entries(tmp_path, capsys):
    target = tmp_path / "snippet.py"
    target.write_text("def f(xs=[]):\n    return xs\ndef g(ys=[]):\n    return ys\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    capsys.readouterr()

    # Fix one of the two baselined findings, then prune.
    target.write_text("def f(xs=None):\n    return xs\ndef g(ys=[]):\n    return ys\n")
    assert main([str(target), "--baseline", str(baseline),
                 "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale fingerprint(s)" in out
    data = json.loads(baseline.read_text())
    assert len(data["fingerprints"]) == 1

    # The surviving entry still suppresses; the tree is otherwise clean.
    assert main([str(target), "--baseline", str(baseline)]) == 0


def test_prune_baseline_noop_without_entries(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text("VALUE = 1\n")
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--baseline", str(baseline),
                 "--prune-baseline"]) == 0
    assert "nothing to do" in capsys.readouterr().out
    assert not baseline.exists()
