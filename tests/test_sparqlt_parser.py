"""Tests for the SPARQLT lexer and parser."""

import pytest

from repro.model.time import date_to_chronon
from repro.sparqlt import (
    And,
    Compare,
    FuncCall,
    LexError,
    Literal,
    Not,
    Or,
    ParseError,
    TermConst,
    TimeConst,
    Var,
    parse,
    parse_expression,
    tokenize,
)


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT ?t { a b c ?t }")]
        assert kinds == [
            "KEYWORD",
            "VAR",
            "PUNCT",
            "IDENT",
            "IDENT",
            "IDENT",
            "VAR",
            "PUNCT",
            "EOF",
        ]

    def test_dates(self):
        tokens = tokenize("2013-01-05 09/30/2013")
        assert [t.kind for t in tokens[:-1]] == ["DATE_ISO", "DATE_US"]

    def test_operators(self):
        tokens = tokenize("<= >= != = < > && || !")
        assert all(t.kind == "OP" for t in tokens[:-1])

    def test_functions_case_insensitive(self):
        tokens = tokenize("year(?t) TSTART(?t)")
        assert tokens[0].kind == "FUNC" and tokens[0].text == "YEAR"
        assert tokens[4].kind == "FUNC" and tokens[4].text == "TSTART"

    def test_string_literal(self):
        token = tokenize('"University of California"')[0]
        assert token.kind == "STRING"

    def test_garbage_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT @t")


class TestParser:
    def test_example_1_when_query(self):
        """Paper Example 1."""
        q = parse(
            "SELECT ?t "
            "{University_of_California president Janet_Napolitano ?t}"
        )
        assert q.select == ["t"]
        (p,) = q.patterns
        assert p.subject == TermConst("University_of_California")
        assert p.predicate == TermConst("president")
        assert p.object == TermConst("Janet_Napolitano")
        assert p.time == Var("t")
        assert p.constant_positions() == "SPO"

    def test_example_2_filter(self):
        """Paper Example 2."""
        q = parse(
            "SELECT ?budget "
            "{University_of_California budget ?budget ?t . "
            "FILTER(YEAR(?t) = 2013) }"
        )
        assert len(q.patterns) == 1
        (f,) = q.filters
        assert f == Compare("=", FuncCall("YEAR", Var("t")), Literal(2013, "number"))

    def test_example_3_duration(self):
        """Paper Example 3: LENGTH with a duration literal."""
        q = parse(
            "SELECT ?person ?t "
            "{ University_of_California president ?person ?t . "
            "FILTER(YEAR(?t) <= 2010 && LENGTH(?t) > 365 DAY)}"
        )
        (f,) = q.filters
        assert isinstance(f, And)
        assert f.right == Compare(
            ">", FuncCall("LENGTH", Var("t")), Literal(365, "duration")
        )

    def test_example_4_temporal_join(self):
        """Paper Example 4: shared temporal variable."""
        q = parse(
            "SELECT ?university ?number ?t "
            "{?university undergraduate ?number ?t . "
            "?university president Mark_Yudof ?t . }"
        )
        assert len(q.patterns) == 2
        assert q.patterns[0].variables() == {"university", "number", "t"}
        assert q.patterns[1].variables() == {"university", "t"}

    def test_example_5_succession(self):
        """Paper Example 5: TEND(?t1) = TSTART(?t2)."""
        q = parse(
            "SELECT ?successor "
            "{ University_of_California president Mark_Yudof ?t1 . "
            "University_of_California president ?successor ?t2 . "
            "FILTER(TEND(?t1) = TSTART(?t2)) . }"
        )
        (f,) = q.filters
        assert f == Compare(
            "=", FuncCall("TEND", Var("t1")), FuncCall("TSTART", Var("t2"))
        )

    def test_time_constant_pattern(self):
        q = parse("SELECT ?o {UC budget ?o 2013-05-01}")
        (p,) = q.patterns
        assert p.time == TimeConst(date_to_chronon("2013-05-01"))
        assert p.constant_positions() == "SPT"

    def test_where_keyword_optional(self):
        q = parse("SELECT ?o WHERE {UC budget ?o ?t}")
        assert len(q.patterns) == 1

    def test_duration_units(self):
        expr = parse_expression("LENGTH(?t) > 2 YEAR")
        assert expr.right == Literal(730, "duration")
        expr = parse_expression("LENGTH(?t) >= 3 MONTH")
        assert expr.right == Literal(90, "duration")

    def test_year_as_function_not_unit(self):
        expr = parse_expression("YEAR(?t) = 2013")
        assert expr.left == FuncCall("YEAR", Var("t"))

    def test_boolean_precedence(self):
        expr = parse_expression("?a = 1 || ?b = 2 && ?c = 3")
        # AND binds tighter than OR.
        assert isinstance(expr, Or)
        assert isinstance(expr.right, And)

    def test_negation(self):
        expr = parse_expression("!(?a = 1)")
        assert isinstance(expr, Not)

    def test_parenthesized(self):
        expr = parse_expression("(?a = 1 || ?b = 2) && ?c = 3")
        assert isinstance(expr, And)
        assert isinstance(expr.left, Or)

    def test_date_comparison(self):
        expr = parse_expression("?t <= 01/01/2013")
        assert expr.right == Literal(date_to_chronon("2013-01-01"), "date")

    def test_string_object(self):
        q = parse('SELECT ?t {UC motto "Fiat Lux" ?t}')
        assert q.patterns[0].object == TermConst("Fiat Lux")

    def test_errors(self):
        with pytest.raises(ParseError):
            parse("SELECT {UC a b ?t}")  # no select vars
        with pytest.raises(ParseError):
            parse("SELECT ?t {UC a b ?t")  # missing brace
        with pytest.raises(ParseError):
            parse("SELECT ?t { }")  # no pattern
        with pytest.raises(ParseError):
            parse("SELECT ?t {UC a b 42}")  # bad time term
        with pytest.raises(ParseError):
            parse("SELECT ?t {UC a b ?t} extra")
