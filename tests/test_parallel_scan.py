"""Parallel pattern scanning must be invisible in results.

The contract of :mod:`repro.engine.parallel` is byte-identical output:
per-leaf pieces are concatenated in visit order and pattern prefetches
are consumed in plan order, so flipping ``parallel`` on must change
nothing but wall-clock.  Verified here over a fig9-style workload
(selection + join + complex suites on a synthetic Wikipedia dataset)
and directly at the scan layer.
"""

import pytest

from repro.datasets import wikipedia
from repro.datasets.queries import (
    complex_queries,
    join_queries,
    selection_queries,
)
from repro.engine import RDFTX
from repro.engine.parallel import (
    _parse_switch,
    parallel_scan_pieces,
)
from repro.model.time import MIN_TIME, NOW
from repro.mvbt import MAX_KEY, MIN_KEY, scan_pieces
from repro.optimizer import Optimizer


@pytest.fixture(scope="module")
def engine():
    graph = wikipedia.generate(1200, seed=11).graph
    return RDFTX.from_graph(graph, optimizer=Optimizer())


@pytest.fixture(scope="module")
def workload(engine):
    graph = engine._graph
    by_size = complex_queries(graph, seeds=2, max_patterns=5)
    return (
        selection_queries(graph, count=6)
        + join_queries(graph, count=4)
        + [q for queries in by_size.values() for q in queries]
    )


class TestByteIdenticalResults:
    def test_fig9_suite_parallel_equals_serial(self, engine, workload):
        for text in workload:
            engine.parallel = False
            serial = engine.query(text)
            engine.parallel = True
            parallel = engine.query(text)
            engine.parallel = False
            assert parallel.variables == serial.variables
            assert parallel.rows == serial.rows, text
            # Byte-identical, including row and period ordering.
            assert repr(parallel.rows) == repr(serial.rows), text

    def test_profiling_still_works_in_parallel_mode(self, engine, workload):
        engine.parallel = True
        try:
            result = engine.query(workload[0], profile=True)
        finally:
            engine.parallel = False
        assert result.profile is not None


class TestScanLayer:
    REGIONS = [
        (MIN_KEY, MAX_KEY, MIN_TIME, NOW),
        (MIN_KEY, MAX_KEY, 5, 50),
        ((5,), (900, 0, 0), MIN_TIME, NOW),
        (MIN_KEY, MAX_KEY, NOW, NOW),  # degenerate window
    ]

    def test_parallel_pieces_identical(self, engine):
        for tree in engine.indexes.values():
            for key_low, key_high, t1, t2 in self.REGIONS:
                assert parallel_scan_pieces(
                    tree, key_low, key_high, t1, t2
                ) == scan_pieces(tree, key_low, key_high, t1, t2)

    def test_parallel_counters_advance(self, engine):
        from repro.engine import parallel as par
        from repro.obs import metrics as _metrics

        if not _metrics.ENABLED:
            pytest.skip("REPRO_OBS=0")
        tree = engine.indexes["spo"]
        before = par._PARALLEL_SCANS.value
        parallel_scan_pieces(tree, MIN_KEY, MAX_KEY, MIN_TIME, NOW)
        assert par._PARALLEL_SCANS.value == before + 1


class TestSwitchParsing:
    @pytest.mark.parametrize("raw", [None, "", "0", "false", "off", "no",
                                     "False", " OFF "])
    def test_disabled_values(self, raw):
        assert _parse_switch(raw) == (False, None)

    def test_plain_enable(self):
        assert _parse_switch("1") == (True, None)
        assert _parse_switch("true") == (True, None)
        assert _parse_switch("on") == (True, None)

    def test_integer_sizes_pool(self):
        assert _parse_switch("4") == (True, 4)
        assert _parse_switch("-2") == (False, None)
