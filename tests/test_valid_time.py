"""Valid-time ingestion (Section 2.1 / technical-report note).

The engine's storage is designed for transaction time; valid-time
histories arrive out of order and may assert overlapping intervals for one
fact.  ``TemporalGraph.coalesced()`` normalizes them for loading.
"""

import pytest

from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph
from repro.mvbt.tree import DuplicateKeyError


class TestCoalesced:
    def test_overlapping_assertions_merge(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 10, 30)
        g.add("a", "p", "x", 20, 50)  # overlapping duplicate assertion
        g.add("a", "p", "x", 50, 60)  # adjacent
        g.add("a", "p", "x", 100, 110)  # disjoint
        merged = g.coalesced()
        assert len(merged) == 2
        assert merged.validity("a", "p", "x") == PeriodSet(
            [Period(10, 60), Period(100, 110)]
        )

    def test_live_interval_absorbs(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 10, 30)
        g.add("a", "p", "x", 20, NOW)
        merged = g.coalesced()
        assert merged.validity("a", "p", "x") == PeriodSet(
            [Period(10, NOW)]
        )

    def test_distinct_facts_untouched(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 10, 30)
        g.add("a", "p", "y", 20, 40)
        merged = g.coalesced()
        assert len(merged) == 2


class TestValidTimeLoading:
    def test_raw_overlaps_fail_loading(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 10, 30)
        g.add("a", "p", "x", 20, 50)
        with pytest.raises(DuplicateKeyError):
            RDFTX.from_graph(g)

    def test_coalesced_valid_time_loads_and_queries(self):
        g = TemporalGraph()
        # Out-of-order, overlapping valid-time assertions.
        g.add("event", "venue", "rome", 500, 600)
        g.add("event", "venue", "rome", 550, 650)
        g.add("event", "venue", "paris", 100, 200)
        g.add("event", "speaker", "ada", 120, 180)
        engine = RDFTX.from_graph(g.coalesced())
        result = engine.query(
            "SELECT ?v ?t {event venue ?v ?t}"
        )
        by_venue = {r["v"]: r["t"] for r in result}
        assert by_venue["rome"] == PeriodSet([Period(500, 650)])
        # Temporal join across valid-time facts still works.
        joined = engine.query(
            "SELECT ?v {event venue ?v ?t . event speaker ada ?t}"
        )
        assert joined.column("v") == ["paris"]
