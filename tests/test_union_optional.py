"""UNION and OPTIONAL — the paper's declared future work, implemented.

Section 3.1: "(P UNION P') and (P OPT P') are not supported in current
SPARQLT, and their implementation is planned for the future."  This module
tests the implementation of exactly that plan.
"""

import pytest

from repro.engine import RDFTX
from repro.model import Period, PeriodSet, TemporalGraph, date_to_chronon
from repro.sparqlt import ParseError, parse

D = date_to_chronon


@pytest.fixture(scope="module")
def engine():
    g = TemporalGraph()
    g.add("uc", "president", "yudof", D("2008-06-16"), D("2013-09-30"))
    g.add("uc", "president", "napolitano", D("2013-09-30"))
    g.add("uc", "chancellor", "block", D("2007-08-01"))
    g.add("um", "president", "coleman", D("2002-08-01"), D("2014-07-01"))
    g.add("um", "motto", "artes_scientia_veritas", D("2000-01-01"))
    g.add("lonely", "founded", "1901", D("2000-01-01"))
    return RDFTX.from_graph(g)


class TestParsing:
    def test_union_parses(self):
        q = parse("SELECT ?x { {?x president ?p ?t} UNION {?x motto ?m ?t} }")
        assert not q.is_simple
        assert len(q.group.unions) == 1
        assert len(q.group.unions[0]) == 2

    def test_chained_union(self):
        q = parse(
            "SELECT ?x { {?x a ?v ?t} UNION {?x b ?v ?t} UNION {?x c ?v ?t} }"
        )
        assert len(q.group.unions[0]) == 3

    def test_optional_parses(self):
        q = parse(
            "SELECT ?x ?m {?x president ?p ?t . OPTIONAL {?x motto ?m ?t2}}"
        )
        assert len(q.group.optionals) == 1
        assert q.group.patterns  # the base pattern stays in the group

    def test_nested_optional_in_union(self):
        q = parse(
            "SELECT ?x { {?x a ?v ?t . OPTIONAL {?x b ?w ?t}} "
            "UNION {?x c ?v ?t} }"
        )
        assert not q.group.unions[0][0].is_simple

    def test_lone_braced_group_is_nested_join(self, engine):
        nested = engine.query("SELECT ?x { {?x president ?p ?t} }")
        plain = engine.query("SELECT ?x {?x president ?p ?t}")
        assert sorted(nested.column("x")) == sorted(plain.column("x"))

    def test_plain_queries_stay_simple(self):
        assert parse("SELECT ?t {uc president ?p ?t}").is_simple


class TestUnionSemantics:
    def test_union_of_predicates(self, engine):
        result = engine.query(
            "SELECT ?who { {uc president ?who ?t} UNION "
            "{uc chancellor ?who ?t} }"
        )
        assert sorted(result.column("who")) == [
            "block", "napolitano", "yudof",
        ]

    def test_union_joined_with_base_pattern(self, engine):
        result = engine.query(
            "SELECT ?x ?leader {?x president ?leader ?t . "
            "{ {?x chancellor ?c ?t2} UNION {?x motto ?m ?t2} } }"
        )
        # uc has a chancellor, um has a motto; lonely matches nothing.
        assert sorted(set(result.column("x"))) == ["uc", "um"]

    def test_union_branch_filters_are_local(self, engine):
        result = engine.query(
            "SELECT ?who { "
            "{uc president ?who ?t . FILTER(YEAR(?t) = 2010)} UNION "
            "{uc president ?who ?t . FILTER(YEAR(?t) = 2014)} }"
        )
        assert sorted(result.column("who")) == ["napolitano", "yudof"]

    def test_union_with_shared_temporal_join(self, engine):
        result = engine.query(
            "SELECT ?who ?t {uc president ?who ?t . "
            "{ {um president coleman ?t} UNION {um motto ?m ?t} } }"
        )
        by_who = {r["who"]: r["t"] for r in result}
        # Napolitano overlaps Coleman only until 2014-07-01 via branch 1,
        # and the motto period (live) via branch 2 -> coalesced whole term.
        assert by_who["napolitano"].first() == D("2013-09-30")

    def test_empty_union_branch_ok(self, engine):
        result = engine.query(
            "SELECT ?who { {uc president ?who ?t} UNION "
            "{uc nosuchpredicate ?who ?t} }"
        )
        assert sorted(result.column("who")) == ["napolitano", "yudof"]


class TestOptionalSemantics:
    def test_optional_extends_when_present(self, engine):
        result = engine.query(
            "SELECT ?x ?p ?m {?x president ?p ?t . "
            "OPTIONAL {?x motto ?m ?t2}}"
        )
        rows = {(r["x"], r["m"]) for r in result}
        assert ("um", "artes_scientia_veritas") in rows
        assert ("uc", None) in rows  # no motto: kept, unbound

    def test_optional_never_removes_rows(self, engine):
        with_opt = engine.query(
            "SELECT ?x {?x president ?p ?t . OPTIONAL {?x motto ?m ?t2}}"
        )
        without = engine.query("SELECT ?x {?x president ?p ?t}")
        assert sorted(with_opt.column("x")) == sorted(without.column("x"))

    def test_optional_temporal_intersection(self, engine):
        result = engine.query(
            "SELECT ?x ?p ?c ?t {?x president ?p ?t . "
            "OPTIONAL {?x chancellor ?c ?t}}"
        )
        uc_rows = [r for r in result if r["x"] == "uc"]
        for row in uc_rows:
            assert row["c"] == "block"
            # Shared ?t intersects with the chancellorship.
            assert row["t"].first() >= D("2007-08-01")
        um_rows = [r for r in result if r["x"] == "um"]
        assert all(r["c"] is None for r in um_rows)

    def test_filter_on_optional_variable_rejects_unbound(self, engine):
        result = engine.query(
            "SELECT ?x ?m {?x president ?p ?t . "
            "OPTIONAL {?x motto ?m ?t2} . FILTER(?m = artes_scientia_veritas)}"
        )
        assert result.column("x") == ["um"]

    def test_optional_rendering(self, engine):
        result = engine.query(
            "SELECT ?x ?m {?x president ?p ?t . OPTIONAL {?x motto ?m ?t2}}"
        )
        assert "-" in result.to_table()  # unbound renders as a dash
