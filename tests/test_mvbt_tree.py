"""Tests for the MVBT: structure changes, invariants, reference-model checks.

The reference model replays the same insert/delete stream into a plain list
of interval records; every query result from the MVBT, coalesced and
restricted to the query window, must equal the reference answer.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.time import MIN_TIME, NOW, Period, PeriodSet
from repro.mvbt import (
    DuplicateKeyError,
    MAX_KEY,
    MIN_KEY,
    MVBT,
    MVBTConfig,
    TimeOrderError,
    bulk_load,
    collect_validity,
    prefix_range,
    range_interval_scan,
)

SMALL = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


def key(n: int) -> tuple:
    return (n, 0, 0)


class TestConfig:
    def test_defaults_valid(self):
        cfg = MVBTConfig()
        assert cfg.strong_min < cfg.strong_max

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            MVBTConfig(block_capacity=4, weak_min=1, epsilon=1)

    def test_rejects_key_split_violation(self):
        with pytest.raises(ValueError):
            MVBTConfig(block_capacity=8, weak_min=4, epsilon=1)


class TestBasicOperations:
    def test_empty_tree(self):
        tree = MVBT(SMALL)
        assert tree.live_records == 0
        assert list(range_interval_scan(tree)) == []

    def test_single_insert(self):
        tree = MVBT(SMALL)
        tree.insert(key(5), 10)
        got = list(range_interval_scan(tree))
        assert got == [(key(5), Period(10, NOW), None)]
        assert tree.live_records == 1

    def test_insert_delete(self):
        tree = MVBT(SMALL)
        tree.insert(key(5), 10)
        tree.delete(key(5), 20)
        got = collect_validity(tree)
        assert got == {key(5): PeriodSet([Period(10, 20)])}
        assert tree.live_records == 0

    def test_duplicate_insert_raises(self):
        tree = MVBT(SMALL)
        tree.insert(key(5), 10)
        with pytest.raises(DuplicateKeyError):
            tree.insert(key(5), 15)

    def test_reinsert_after_delete(self):
        tree = MVBT(SMALL)
        tree.insert(key(5), 10)
        tree.delete(key(5), 20)
        tree.insert(key(5), 30)
        got = collect_validity(tree)
        assert got[key(5)] == PeriodSet([Period(10, 20), Period(30, NOW)])

    def test_delete_missing_raises(self):
        tree = MVBT(SMALL)
        with pytest.raises(KeyError):
            tree.delete(key(5), 10)

    def test_time_order_enforced(self):
        tree = MVBT(SMALL)
        tree.insert(key(5), 10)
        with pytest.raises(TimeOrderError):
            tree.insert(key(6), 9)

    def test_insert_interval(self):
        tree = MVBT(SMALL)
        tree.insert_interval(key(1), 5, 15)
        assert collect_validity(tree)[key(1)] == PeriodSet([Period(5, 15)])

    def test_payloads_flow_through(self):
        tree = MVBT(SMALL)
        tree.insert(key(3), 4, payload="budget")
        ((k, period, payload),) = list(range_interval_scan(tree))
        assert payload == "budget"


class TestStructureChanges:
    def test_version_and_key_splits(self):
        """Paper Figure 2(b): fill one leaf, watch it split."""
        tree = MVBT(SMALL)
        for i in range(30):
            tree.insert(key(i), i + 1)
        tree.check_invariants()
        assert not tree.live_root.is_leaf
        got = collect_validity(tree)
        assert set(got) == {key(i) for i in range(30)}
        for i in range(30):
            assert got[key(i)] == PeriodSet([Period(i + 1, NOW)])

    def test_merge_on_underflow(self):
        tree = MVBT(SMALL)
        for i in range(30):
            tree.insert(key(i), i + 1)
        for i in range(25):
            tree.delete(key(i), 100 + i)
        tree.check_invariants()
        live_now = collect_validity(tree, t1=200, t2=NOW)
        assert set(live_now) == {key(i) for i in range(25, 30)}

    def test_root_chain_grows(self):
        tree = MVBT(SMALL)
        for i in range(100):
            tree.insert(key(i), i + 1)
        assert len(tree._roots) > 1
        tree.check_invariants()

    def test_historical_query_after_splits(self):
        tree = MVBT(SMALL)
        for i in range(50):
            tree.insert(key(i), i + 1)
        # At time 10, keys 0..9 exist.
        early = collect_validity(tree, t1=10, t2=11)
        assert set(early) == {key(i) for i in range(10)}

    def test_delete_everything(self):
        tree = MVBT(SMALL)
        for i in range(20):
            tree.insert(key(i), i + 1)
        for i in range(20):
            tree.delete(key(i), 50 + i)
        tree.check_invariants()
        assert tree.live_records == 0
        assert collect_validity(tree, t1=100, t2=NOW) == {}
        # History is intact.
        assert len(collect_validity(tree)) == 20


class ReferenceModel:
    """Naive interval store used to validate MVBT query answers."""

    def __init__(self):
        self.records: list[tuple[tuple, int, int]] = []
        self.live: dict[tuple, int] = {}

    def insert(self, k, t):
        self.live[k] = t

    def delete(self, k, t):
        start = self.live.pop(k)
        self.records.append((k, start, t))

    def finished(self):
        done = list(self.records)
        done.extend((k, s, NOW) for k, s in self.live.items())
        return done

    def query(self, key_low, key_high, t1, t2):
        window = Period(t1, t2) if t1 < t2 else None
        out = {}
        for k, s, e in self.finished():
            if s >= e:
                # Inserted and deleted in the same chronon: the record is
                # annihilated (the MVBT entry has an empty lifetime).
                continue
            if not (key_low <= k < key_high):
                continue
            if not (s < t2 and t1 < e):
                continue
            out.setdefault(k, []).append(Period(s, e))
        return {
            k: PeriodSet(parts).restrict(window)
            for k, parts in out.items()
        }


def _run_scenario(ops, config, queries):
    tree = MVBT(config)
    ref = ReferenceModel()
    for op, k, t in ops:
        if op == "ins":
            tree.insert(k, t)
            ref.insert(k, t)
        else:
            tree.delete(k, t)
            ref.delete(k, t)
    tree.check_invariants()
    for key_low, key_high, t1, t2 in queries:
        got = {
            k: ps.restrict(Period(t1, t2))
            for k, ps in collect_validity(
                tree, key_low, key_high, t1, t2
            ).items()
        }
        got = {k: ps for k, ps in got.items() if not ps.is_empty}
        expected = ref.query(key_low, key_high, t1, t2)
        expected = {k: ps for k, ps in expected.items() if not ps.is_empty}
        assert got == expected, (key_low, key_high, t1, t2)


@st.composite
def op_streams(draw):
    """Monotone-time streams of inserts and deletes over a small key space."""
    n = draw(st.integers(min_value=1, max_value=120))
    ops = []
    live = set()
    time = 0
    for _ in range(n):
        time += draw(st.integers(min_value=0, max_value=3))
        k = key(draw(st.integers(min_value=0, max_value=25)))
        if k in live and draw(st.booleans()):
            ops.append(("del", k, time))
            live.discard(k)
        elif k not in live:
            ops.append(("ins", k, time))
            live.add(k)
    return ops


@settings(max_examples=60, deadline=None)
@given(op_streams())
def test_mvbt_matches_reference_model(ops):
    queries = [
        (MIN_KEY, MAX_KEY, MIN_TIME, NOW),
        (key(5), key(15), MIN_TIME, NOW),
        (MIN_KEY, MAX_KEY, 10, 40),
        (key(0), key(10), 20, 30),
        (key(20), key(26), 5, NOW),
    ]
    _run_scenario(ops, SMALL, queries)


@settings(max_examples=20, deadline=None)
@given(op_streams(), st.integers(min_value=10, max_value=20))
def test_mvbt_matches_reference_default_config(ops, block):
    config = MVBTConfig(block_capacity=block, weak_min=2, epsilon=2)
    queries = [(MIN_KEY, MAX_KEY, MIN_TIME, NOW), (key(3), key(22), 15, 35)]
    _run_scenario(ops, config, queries)


def test_large_random_workload_against_reference():
    rng = random.Random(42)
    tree = MVBT(MVBTConfig())
    ref = ReferenceModel()
    live = set()
    time = 0
    for _ in range(3000):
        time += rng.randint(0, 2)
        k = (rng.randint(0, 40), rng.randint(0, 5), rng.randint(0, 5))
        if k in live and rng.random() < 0.45:
            tree.delete(k, time)
            ref.delete(k, time)
            live.discard(k)
        elif k not in live:
            tree.insert(k, time)
            ref.insert(k, time)
            live.add(k)
    tree.check_invariants()
    for key_low, key_high, t1, t2 in [
        (MIN_KEY, MAX_KEY, MIN_TIME, NOW),
        ((10,), (30,), 100, 900),
        ((0,), (41,), time // 2, time // 2 + 1),
    ]:
        got = {
            k: ps.restrict(Period(t1, t2))
            for k, ps in collect_validity(tree, key_low, key_high, t1, t2).items()
        }
        got = {k: ps for k, ps in got.items() if not ps.is_empty}
        expected = ref.query(key_low, key_high, t1, t2)
        expected = {k: ps for k, ps in expected.items() if not ps.is_empty}
        assert got == expected


class TestBulkLoadAndPrefix:
    def test_bulk_load_intervals(self):
        tree = MVBT(SMALL)
        records = [
            (key(1), 5, 10),
            (key(2), 7, NOW),
            (key(1), 12, 20),
        ]
        bulk_load(tree, records)
        got = collect_validity(tree)
        assert got[key(1)] == PeriodSet([Period(5, 10), Period(12, 20)])
        assert got[key(2)] == PeriodSet([Period(7, NOW)])

    def test_bulk_load_back_to_back(self):
        """A value replaced in the same chronon (delete then insert)."""
        tree = MVBT(SMALL)
        bulk_load(tree, [(key(1), 5, 10), (key(1), 10, 20)])
        assert collect_validity(tree)[key(1)] == PeriodSet([Period(5, 20)])

    def test_prefix_range(self):
        tree = MVBT(SMALL)
        tree.insert((1, 2, 3), 5)
        tree.insert((1, 2, 9), 6)
        tree.insert((1, 3, 1), 7)
        low, high = prefix_range((1, 2))
        got = collect_validity(tree, low, high)
        assert set(got) == {(1, 2, 3), (1, 2, 9)}

    def test_scan_empty_ranges(self):
        tree = MVBT(SMALL)
        tree.insert(key(1), 5)
        assert list(range_interval_scan(tree, key(2), key(2))) == []
        assert list(range_interval_scan(tree, t1=10, t2=10)) == []
