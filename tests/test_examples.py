"""Smoke tests: every example script runs and prints its headline result."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

CASES = {
    "quickstart.py": "[09/30/2013 ... now]",
    "university_history.py": "Janet_Napolitano",
    "wikipedia_timeline.py": "Population timeline",
    "govtrack_optimizer.py": "Optimized plan:",
    "knowledge_audit.py": "After recovery:",
    "union_optional.py": "OPTIONAL",
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert CASES[script] in completed.stdout
