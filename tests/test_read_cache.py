"""The two-level read-path cache: LRU primitive, revision-tagged result
cache, plan-cache persistence across writes, and the cached/uncached
equivalence property.

The load-bearing property sits at the end: a store with the result cache
on must answer every query identically to a cache-free store through an
arbitrary interleaving of queries and writes — each write invalidating
wholesale, each re-query repopulating at the new revision.
"""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import LRUCache
from repro.engine.engine import QueryResult
from repro.model import TemporalGraph, date_to_chronon
from repro.service.cache import QueryCache, normalize_query
from repro.service.store import TemporalStore

D = date_to_chronon


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # promote a
        cache.put("c", 3)           # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_put_promotes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # rewrite promotes too
        cache.put("c", 3)   # evicts b
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_clear_reports_count(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0


class TestNormalizeQuery:
    def test_whitespace_runs_collapse(self):
        a = "SELECT ?o {UC president ?o ?t}"
        b = "  SELECT   ?o\n\t{UC  president ?o   ?t}  "
        assert normalize_query(a) == normalize_query(b)

    def test_distinct_queries_stay_distinct(self):
        assert normalize_query("SELECT ?o {A p ?o ?t}") != normalize_query(
            "SELECT ?o {B p ?o ?t}"
        )

    def test_whitespace_inside_string_literal_is_preserved(self):
        # "a  b" and "a b" are different values; collapsing inside the
        # quotes would conflate two queries with different answers.
        a = 'SELECT ?o {UC motto ?o ?t . FILTER(?o = "a  b")}'
        b = 'SELECT ?o {UC motto ?o ?t . FILTER(?o = "a b")}'
        assert normalize_query(a) != normalize_query(b)
        # ...while layout whitespace outside the literal still collapses.
        assert normalize_query('FILTER(?o  =  "a  b")') == normalize_query(
            'FILTER(?o = "a  b")'
        )

    def test_escaped_quote_does_not_end_the_literal(self):
        a = 'FILTER(?o = "es\\"c  aped")   x'
        assert normalize_query(a) == 'FILTER(?o = "es\\"c  aped") x'

    def test_single_and_triple_quoted_spans_preserved(self):
        assert normalize_query("a  'x  y'  b") == "a 'x  y' b"
        assert normalize_query('a  """x  y"""  b') == 'a """x  y""" b'

    def test_unterminated_literal_keeps_tail_verbatim(self):
        text = 'SELECT ?o {UC p ?o ?t . FILTER(?o = "oops   '
        assert normalize_query(text).endswith('"oops   ')


def _result(rows, revision=None):
    return QueryResult(variables=["o"], rows=rows, revision=revision)


class TestQueryCache:
    def test_hit_requires_matching_revision(self):
        cache = QueryCache(8)
        cache.put("q", 3, _result([{"o": "x"}]))
        assert cache.get("q", 4) is None
        hit = cache.get("q", 3)
        assert hit is not None and hit.rows == [{"o": "x"}]
        assert hit.revision == 3

    def test_invalidate_drops_everything(self):
        cache = QueryCache(8)
        cache.put("q", 1, _result([]))
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert cache.get("q", 1) is None

    def test_stale_generation_put_is_unreturnable(self):
        # A slow reader that computed before an invalidation must not be
        # able to poison the cache afterwards (the load_dataset race:
        # data changed, revision did not).
        cache = QueryCache(8)
        token = cache.generation
        cache.invalidate()
        cache.put("q", 0, _result([{"o": "stale"}]), generation=token)
        assert cache.get("q", 0) is None

    def test_hits_are_isolated_copies(self):
        cache = QueryCache(8)
        cache.put("q", 1, _result([{"o": "x"}]))
        first = cache.get("q", 1)
        first.rows[0]["o"] = "mutated"
        first.rows.append({"o": "extra"})
        second = cache.get("q", 1)
        assert second.rows == [{"o": "x"}]

    def test_put_snapshots_the_result(self):
        cache = QueryCache(8)
        original = _result([{"o": "x"}])
        cache.put("q", 1, original)
        original.rows[0]["o"] = "mutated"
        assert cache.get("q", 1).rows == [{"o": "x"}]


def fixture_graph():
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"))
    return g


QUERIES = [
    "SELECT ?o ?t {UC president ?o ?t}",
    "SELECT ?s ?o {?s president ?o ?t}",
    "SELECT ?s {?s member Senate ?t}",
    "SELECT ?p ?o {UC ?p ?o ?t . FILTER(YEAR(?t) = 2014)}",
]


@pytest.fixture()
def store(tmp_path):
    with TemporalStore(tmp_path, fsync=False) as s:
        s.load_dataset(fixture_graph())
        yield s


class TestLiteralAwareCacheKeys:
    """Regression: whitespace inside quoted literals is semantic, so the
    two FILTER queries below must neither share a cache key nor ever
    return each other's rows through the store."""

    Q_TWO_SPACES = 'SELECT ?o {UC motto ?o ?t . FILTER(?o = "a  b")}'
    Q_ONE_SPACE = 'SELECT ?o {UC motto ?o ?t . FILTER(?o = "a b")}'

    def test_distinct_keys(self):
        assert normalize_query(self.Q_TWO_SPACES) != normalize_query(
            self.Q_ONE_SPACE
        )

    def test_distinct_results_through_the_store(self, tmp_path):
        g = TemporalGraph()
        g.add("UC", "motto", "a  b", D("01/01/2010"))
        g.add("UC", "motto", "a b", D("01/01/2010"))
        with TemporalStore(tmp_path, fsync=False) as s:
            s.load_dataset(g)
            # First query populates the cache; the second must miss it.
            assert s.query(self.Q_TWO_SPACES).rows == [{"o": "a  b"}]
            assert s.query(self.Q_ONE_SPACE).rows == [{"o": "a b"}]
            # Cached re-reads stay per-key correct.
            assert s.query(self.Q_TWO_SPACES).rows == [{"o": "a  b"}]
            assert s.query(self.Q_ONE_SPACE).rows == [{"o": "a b"}]


class TestStoreResultCache:
    def test_repeat_query_is_cached(self, store):
        first = store.query(QUERIES[0])
        assert store.cached_results == 1
        second = store.query(QUERIES[0])
        assert second.rows == first.rows
        assert second.revision == first.revision

    def test_whitespace_variants_share_an_entry(self, store):
        store.query("SELECT ?o ?t {UC president ?o ?t}")
        store.query("SELECT ?o ?t\n  {UC   president ?o ?t}")
        assert store.cached_results == 1

    def test_write_invalidates_and_requery_sees_update(self, store):
        q = "SELECT ?s {?s member Senate ?t}"
        assert store.query(q).rows == []
        assert store.cached_results == 1
        store.insert("Alice", "member", "Senate", D("01/01/2016"))
        assert store.cached_results == 0
        result = store.query(q)
        assert result.rows == [{"s": "Alice"}]
        assert result.revision == store.revision

    def test_profiled_queries_bypass_the_cache(self, store):
        store.query(QUERIES[0], profile=True)
        assert store.cached_results == 0
        # ... and never serve from it.
        store.query(QUERIES[0])
        profiled = store.query(QUERIES[0], profile=True)
        assert profiled.rows == store.query(QUERIES[0]).rows

    def test_cache_can_be_disabled(self, tmp_path):
        with TemporalStore(
            tmp_path / "nocache", fsync=False, query_cache_size=0
        ) as s:
            s.load_dataset(fixture_graph())
            s.query(QUERIES[0])
            assert s.cached_results is None

    def test_mutating_a_result_does_not_poison_the_cache(self, store):
        first = store.query(QUERIES[0])
        first.rows.clear()
        assert store.query(QUERIES[0]).rows != []


@st.composite
def action_streams(draw):
    """Interleavings of query (by index) and write actions."""
    return draw(
        st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=len(QUERIES) - 1),
                st.just("write"),
            ),
            min_size=1,
            max_size=12,
        )
    )


class TestCachedUncachedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(actions=action_streams())
    def test_cached_store_matches_uncached(self, actions):
        with tempfile.TemporaryDirectory() as cached_dir, \
                tempfile.TemporaryDirectory() as plain_dir:
            cached = TemporalStore(cached_dir, fsync=False,
                                   query_cache_size=64)
            plain = TemporalStore(plain_dir, fsync=False,
                                  query_cache_size=0)
            try:
                cached.load_dataset(fixture_graph())
                plain.load_dataset(fixture_graph())
                writes = 0
                for action in actions:
                    if action == "write":
                        t = D("01/01/2016") + writes
                        for s in (cached, plain):
                            s.insert(f"P{writes}", "member", "Senate", t)
                        writes += 1
                        continue
                    text = QUERIES[action]
                    # Query twice: the second call exercises the hit path.
                    a1, a2 = cached.query(text), cached.query(text)
                    b = plain.query(text)
                    assert a1.rows == b.rows
                    assert a2.rows == b.rows
                    assert a1.variables == b.variables
                    assert a2.revision == cached.revision
            finally:
                cached.close()
                plain.close()
