"""Tests for plan construction, join ordering, and executor behaviors."""

import pytest

from repro.engine import RDFTX, default_order, translate_pattern
from repro.engine.patterns import UnknownTermError, decode_key_to_spo
from repro.engine.plan import PlanGraph
from repro.model import NOW, Period, PeriodSet, TemporalGraph
from repro.sparqlt import parse


@pytest.fixture(scope="module")
def graph():
    g = TemporalGraph()
    g.add("a", "p", "x", 1, 10)
    g.add("a", "q", "y", 5, 20)
    g.add("b", "p", "x", 3, 8)
    g.add("b", "r", "z", 1, NOW)
    g.add("c", "q", "y", 2, 4)
    return g


@pytest.fixture(scope="module")
def engine(graph):
    return RDFTX.from_graph(graph)


class TestPatternTranslation:
    def test_index_choice_matrix(self, graph):
        cases = {
            "SELECT ?t {a p x ?t}": ("spo", "SPO"),
            "SELECT ?o {a p ?o ?t}": ("spo", "SP"),
            "SELECT ?p {a ?p x ?t}": ("sop", "SO"),
            "SELECT ?p ?o {a ?p ?o ?t}": ("spo", "S"),
            "SELECT ?s {?s p x ?t}": ("pos", "PO"),
            "SELECT ?s ?o {?s p ?o ?t}": ("pos", "P"),
            "SELECT ?s ?p {?s ?p x ?t}": ("ops", "O"),
            "SELECT ?s ?p ?o {?s ?p ?o ?t}": ("spo", ""),
        }
        for text, (order, ptype) in cases.items():
            query = parse(text)
            plan = translate_pattern(query.patterns[0], graph.dictionary)
            assert plan.index_order == order, text
            assert plan.pattern_type.replace("T", "") == ptype, text

    def test_time_constant_pattern_type(self, graph):
        query = parse("SELECT ?o {a p ?o 1970-01-05}")
        plan = translate_pattern(query.patterns[0], graph.dictionary)
        assert plan.pattern_type == "SPT"
        assert plan.time_range == Period.point(4)

    def test_unknown_term_raises(self, graph):
        query = parse("SELECT ?t {nosuch p x ?t}")
        with pytest.raises(UnknownTermError):
            translate_pattern(query.patterns[0], graph.dictionary)

    def test_repeated_variable_slots(self, graph):
        query = parse("SELECT ?x {?x p ?x ?t}")
        plan = translate_pattern(query.patterns[0], graph.dictionary)
        assert plan.equal_slots  # the repeated ?x must be checked

    def test_window_intersection_from_filters(self, graph):
        query = parse(
            "SELECT ?o {a p ?o ?t . "
            "FILTER(?t >= 1970-01-03 && ?t <= 1970-01-06)}"
        )
        plan = translate_pattern(
            query.patterns[0], graph.dictionary, query.filter_conjuncts()
        )
        assert plan.time_range == Period(2, 6)

    def test_decode_key_roundtrip(self):
        assert decode_key_to_spo((7, 8, 9), "spo") == (7, 8, 9)
        assert decode_key_to_spo((8, 9, 7), "pos") == (7, 8, 9)
        assert decode_key_to_spo((9, 8, 7), "ops") == (7, 8, 9)
        assert decode_key_to_spo((7, 9, 8), "sop") == (7, 8, 9)


class TestPlanGraph:
    def test_edges_from_shared_variables(self, graph):
        query = parse(
            "SELECT ?s {?s p ?o1 ?t . ?s q ?o2 ?t . ?x r ?o3 ?u}"
        )
        patterns = [
            translate_pattern(p, graph.dictionary) for p in query.patterns
        ]
        plan_graph = PlanGraph.build(query, patterns)
        assert (0, 1) in plan_graph.edges
        assert plan_graph.neighbors(2) == set()
        assert not plan_graph.connected({0, 1}, 2)
        assert plan_graph.connected(set(), 2)

    def test_describe_mentions_each_pattern(self, engine):
        text = engine.explain("SELECT ?s {?s p ?o ?t . ?s q ?o2 ?t}")
        assert text.count("scan") == 2


class TestDefaultOrder:
    def test_most_selective_first(self, graph):
        query = parse("SELECT ?s ?o {?s ?p ?o ?t . ?s p x ?t}")
        patterns = [
            translate_pattern(p, graph.dictionary) for p in query.patterns
        ]
        plan_graph = PlanGraph.build(query, patterns)
        assert default_order(plan_graph)[0] == 1

    def test_connectivity_preferred(self, graph):
        query = parse(
            "SELECT ?s {?s p x ?t . ?y q ?o ?u . ?s q ?o ?t2}"
        )
        patterns = [
            translate_pattern(p, graph.dictionary) for p in query.patterns
        ]
        plan_graph = PlanGraph.build(query, patterns)
        order = default_order(plan_graph)
        # After the anchor (0), its neighbor (2) comes before the island (1).
        assert order.index(2) < order.index(1)


class TestExecutorSemantics:
    def test_cross_product_when_disconnected(self, engine):
        result = engine.query(
            "SELECT ?o1 ?o2 {a p ?o1 ?t1 . b r ?o2 ?t2}"
        )
        assert len(result) == 1
        assert result.rows[0] == {"o1": "x", "o2": "z"}

    def test_join_on_term_only(self, engine):
        """Different temporal variables do not intersect periods."""
        result = engine.query(
            "SELECT ?s {?s p x ?t1 . ?s q y ?t2}"
        )
        assert sorted(result.column("s")) == ["a"]

    def test_join_on_shared_time(self, engine):
        result = engine.query("SELECT ?s ?t {?s p x ?t . ?s q y ?t}")
        (row,) = result
        assert row["s"] == "a"
        assert row["t"] == PeriodSet([Period(5, 10)])

    def test_filter_on_join_result(self, engine):
        result = engine.query(
            "SELECT ?s {?s p x ?t . ?s q y ?t . FILTER(LENGTH(?t) > 10)}"
        )
        assert len(result) == 0

    def test_projection_deduplicates(self, engine):
        result = engine.query("SELECT ?p {?s ?p x ?t}")
        assert sorted(result.column("p")) == ["p"]

    def test_select_unbound_variable_is_none(self, engine):
        result = engine.query("SELECT ?ghost {a p ?o ?t}")
        assert result.rows[0]["ghost"] is None

    def test_empty_scan_short_circuits(self, engine):
        result = engine.query(
            "SELECT ?s {?s p nosuchvalue ?t . ?s q ?o ?t}"
        )
        assert len(result) == 0


class TestQueryResult:
    def test_bool_len_iter(self, engine):
        result = engine.query("SELECT ?o {a p ?o ?t}")
        assert result
        assert len(result) == 1
        assert list(result) == result.rows

    def test_column_missing_key_raises(self, engine):
        result = engine.query("SELECT ?o {a p ?o ?t}")
        with pytest.raises(KeyError):
            result.column("nope")
