"""Border cases of the link-based range-interval scan.

Three corners the reference-model property tests rarely hit by chance:

* ``t2 = NOW`` — the query region's right border must sit exactly on the
  tree's current time, so dead history *and* live entries are all found;
* empty-lifetime ``[t, t)`` nodes — same-chronon restructuring churn
  kills nodes at their own birth version; they contribute no entries but
  their backward links must still be followed to reach earlier lineage;
* ``prefix_range`` over a full-length key — the prefix bound must cover
  exactly that one key, not its neighbors.
"""

from repro.model.time import MIN_TIME, NOW, Period, PeriodSet
from repro.mvbt import (
    MAX_KEY,
    MIN_KEY,
    MVBT,
    MVBTConfig,
    collect_validity,
    prefix_range,
    scan_pieces,
)

SMALL = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


def key(n: int) -> tuple:
    return (n, 0, 0)


class TestNowBorder:
    def test_t2_now_sees_live_and_dead(self):
        tree = MVBT(SMALL)
        for i in range(20):
            tree.insert(key(i), 10 + i)
        for i in range(0, 20, 2):
            tree.delete(key(i), 40 + i)
        got = collect_validity(tree, MIN_KEY, MAX_KEY, MIN_TIME, NOW)
        assert len(got) == 20
        for i in range(20):
            if i % 2:
                assert got[key(i)] == PeriodSet([Period(10 + i, NOW)])
            else:
                assert got[key(i)] == PeriodSet([Period(10 + i, 40 + i)])

    def test_t2_now_with_t1_past_all_deaths(self):
        tree = MVBT(SMALL)
        tree.insert(key(1), 10)
        tree.insert(key(2), 11)
        tree.delete(key(1), 20)
        # Window [30, NOW): only the live fact qualifies, clipped at t1.
        got = collect_validity(tree, MIN_KEY, MAX_KEY, 30, NOW)
        assert got == {key(2): PeriodSet([Period(11, NOW)])}

    def test_border_clamps_to_current_time(self):
        tree = MVBT(SMALL)
        tree.insert(key(1), 10)
        # t2 far beyond current_time behaves exactly like t2 = NOW.
        far = tree.current_time + 10_000
        assert scan_pieces(tree, t1=MIN_TIME, t2=far) == scan_pieces(
            tree, t1=MIN_TIME, t2=NOW
        )


class TestEmptyLifetimeNodes:
    def _churned_tree(self) -> MVBT:
        """Same-chronon bursts force splits at the nodes' own birth
        version, leaving ``[t, t)`` husks in the predecessor graph."""
        tree = MVBT(SMALL)
        for i in range(40):
            tree.insert(key(i), 10)  # one chronon, many splits
        for i in range(0, 40, 3):
            tree.delete(key(i), 20)
        for i in range(100, 120):
            tree.insert(key(i), 30)
        return tree

    def test_churn_creates_empty_lifetime_nodes(self):
        tree = self._churned_tree()
        assert any(
            node.start >= node.death for node in tree.iter_nodes()
        ), "scenario no longer produces [t, t) nodes; rework the test"

    def test_scan_traverses_past_empty_nodes(self):
        tree = self._churned_tree()
        got = collect_validity(tree, MIN_KEY, MAX_KEY, MIN_TIME, NOW)
        assert len(got) == 60
        for i in range(40):
            expected_end = 20 if i % 3 == 0 else NOW
            assert got[key(i)] == PeriodSet([Period(10, expected_end)])
        for i in range(100, 120):
            assert got[key(i)] == PeriodSet([Period(30, NOW)])

    def test_empty_nodes_emit_no_pieces(self):
        tree = self._churned_tree()
        for piece_key, lo, hi, _ in scan_pieces(tree):
            assert lo < hi, f"empty piece for {piece_key}"


class TestPrefixRangeFullKey:
    def test_full_tuple_prefix_is_exact(self):
        tree = MVBT(SMALL)
        tree.insert((1, 2, 3, 4), 10)
        tree.insert((1, 2, 3, 5), 11)
        tree.insert((1, 2, 4, 4), 12)
        low, high = prefix_range((1, 2, 3, 4))
        assert low == (1, 2, 3, 4)
        got = collect_validity(tree, low, high)
        assert set(got) == {(1, 2, 3, 4)}

    def test_partial_prefix_still_covers_extensions(self):
        tree = MVBT(SMALL)
        tree.insert((1, 2, 3, 4), 10)
        tree.insert((1, 2, 3, 5), 11)
        tree.insert((1, 2, 4, 0), 12)
        low, high = prefix_range((1, 2, 3))
        got = collect_validity(tree, low, high)
        assert set(got) == {(1, 2, 3, 4), (1, 2, 3, 5)}
