"""Targeted tests for MVBT structure changes and forest bookkeeping.

These complement the reference-model property tests with explicit checks of
the four node structure changes of the paper's Figure 2(c), the root
registry, and the backward-link graph.
"""

import pytest

from repro.model.time import MIN_TIME, NOW
from repro.mvbt import MVBT, MVBTConfig, collect_validity
from repro.mvbt.entry import MIN_KEY

SMALL = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


def key(n: int) -> tuple:
    return (n, 0, 0)


def leaf_nodes(tree):
    return [n for n in tree.iter_nodes() if n.is_leaf]


class TestVersionSplit:
    def test_old_node_dies_and_links_back(self):
        tree = MVBT(SMALL)
        for i in range(SMALL.block_capacity + 1):
            tree.insert(key(i), i + 1)
        dead = [n for n in leaf_nodes(tree) if not n.is_alive]
        live = [n for n in leaf_nodes(tree) if n.is_alive]
        assert dead, "the overflowing leaf must have been killed"
        # Every live leaf traces back to a dead predecessor.
        for node in live:
            assert any(not p.is_alive for p in node.predecessors) or (
                node.predecessors == []
            )

    def test_key_split_partitions_regions(self):
        tree = MVBT(SMALL)
        for i in range(40):
            tree.insert(key(i), i + 1)
        live = sorted(
            (n for n in leaf_nodes(tree) if n.is_alive),
            key=lambda n: n.key_low,
        )
        assert len(live) >= 2
        assert live[0].key_low == MIN_KEY
        for left, right in zip(live, live[1:]):
            assert left.key_high == right.key_low

    def test_merge_restores_weak_condition(self):
        tree = MVBT(SMALL)
        for i in range(24):
            tree.insert(key(i), i + 1)
        for i in range(22):
            tree.delete(key(i), 100 + i)
        tree.check_invariants()
        live = [n for n in leaf_nodes(tree) if n.is_alive]
        for node in live:
            assert node.live_count >= SMALL.weak_min or node is tree.live_root

    def test_merge_key_split_bounds(self):
        """A merge that overfills performs merge & key split (Fig 2c)."""
        tree = MVBT(SMALL)
        for i in range(60):
            tree.insert(key(i), i + 1)
        # Deleting a stripe forces underflows next to full siblings.
        for i in range(0, 60, 3):
            tree.delete(key(i), 200 + i)
        tree.check_invariants()


class TestRootRegistry:
    def test_roots_partition_time(self):
        tree = MVBT(SMALL)
        for i in range(120):
            tree.insert(key(i % 30), i * 2 + 1)
            if i % 30 == 29:
                for j in range(30):
                    tree.delete(key(j), i * 2 + 2)
        starts = tree._root_starts
        assert starts == sorted(starts)
        assert starts[0] == MIN_TIME

    def test_root_for_routes_history(self):
        tree = MVBT(SMALL)
        for i in range(60):
            tree.insert(key(i), i + 1)
        for probe in (1, 10, 30, 59):
            root = tree.root_for(probe)
            assert root.start <= probe

    def test_height_shrink_after_mass_delete(self):
        tree = MVBT(SMALL)
        for i in range(60):
            tree.insert(key(i), i + 1)
        tall_root = tree.live_root
        assert not tall_root.is_leaf
        for i in range(57):
            tree.delete(key(i), 100 + i)
        tree.check_invariants()
        # History remains intact after the shrink.
        assert len(collect_validity(tree)) == 60


class TestBackwardLinks:
    def test_links_cover_all_dead_leaves(self):
        """Every dead leaf is reachable by walking predecessors back from
        the live leaves — the property the link-based scan relies on."""
        tree = MVBT(SMALL)
        live = set()
        for i in range(120):
            k = key(i % 20)
            if k in live:
                tree.delete(k, 1 + i)
                live.discard(k)
            else:
                tree.insert(k, 1 + i)
                live.add(k)
        reachable = set()
        stack = [n for n in leaf_nodes(tree) if n.is_alive]
        while stack:
            node = stack.pop()
            if id(node) in reachable:
                continue
            reachable.add(id(node))
            stack.extend(p for p in node.predecessors if p.is_leaf)
        all_leaves = {
            id(n) for n in leaf_nodes(tree)
            if n.start < n.death  # non-empty lifetime
        }
        assert all_leaves <= reachable

    def test_key_bounds_propagate(self):
        tree = MVBT(SMALL)
        for i in range(100):
            tree.insert(key(i), i + 1)
        for node in tree.iter_nodes():
            if node.key_high is not None:
                assert node.key_low < node.key_high
