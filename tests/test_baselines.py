"""Tests for the comparison systems: all must agree with RDF-TX.

The baselines reproduce the *strategies* the paper measured; their answers
must be identical to the RDF-TX engine on every query — the paper compares
run times, not result sets.
"""

import pytest

from repro.baselines import (
    ALL_BASELINES,
    NamedGraphBaseline,
    RDBMSBaseline,
    RDF3XBaseline,
    ReificationBaseline,
    VirtuosoBaseline,
)
from repro.datasets import wikipedia
from repro.datasets.queries import join_queries, selection_queries
from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph, date_to_chronon

D = date_to_chronon


@pytest.fixture(scope="module")
def uc_graph():
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("06/16/2008"), D("09/30/2013"))
    g.add("UC", "president", "Janet_Napolitano", D("09/30/2013"))
    g.add("UC", "budget", "22.7", D("01/30/2013"), D("01/30/2015"))
    g.add("UC", "budget", "25.46", D("01/30/2015"))
    g.add("UC", "undergraduate", "184562", D("05/14/2013"), D("01/30/2015"))
    g.add("UM", "president", "Mary_Sue_Coleman", D("08/01/2002"), D("07/01/2014"))
    g.add("UM", "budget", "6.6", D("01/01/2013"))
    return g


@pytest.fixture(scope="module")
def wiki():
    return wikipedia.generate(1500, seed=21)


QUERIES = [
    "SELECT ?t {UC president Janet_Napolitano ?t}",
    "SELECT ?budget {UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}",
    "SELECT ?o {UC president ?o 2010-05-01}",
    "SELECT ?s ?o {?s budget ?o ?t . FILTER(?t <= 01/01/2014)}",
    "SELECT ?s {?s president Mary_Sue_Coleman ?t}",
    "SELECT ?p ?v {UC ?p ?v 2014-01-15}",
    "SELECT ?s ?n ?t {?s undergraduate ?n ?t . ?s president Mark_Yudof ?t}",
    "SELECT ?s ?b {?s budget ?b ?t . ?s president ?who ?t . "
    "FILTER(YEAR(?t) = 2013)}",
]


def normalize(result):
    rows = []
    for row in result:
        rows.append(
            tuple(sorted((k, str(v)) for k, v in row.items()))
        )
    return sorted(rows)


@pytest.mark.parametrize("baseline_cls", ALL_BASELINES,
                         ids=lambda c: c.name)
class TestAgreementWithEngine:
    def test_uc_queries(self, uc_graph, baseline_cls):
        engine = RDFTX.from_graph(uc_graph)
        baseline = baseline_cls.from_graph(uc_graph)
        for text in QUERIES:
            assert normalize(baseline.query(text)) == normalize(
                engine.query(text)
            ), f"{baseline_cls.name} differs on: {text}"

    def test_generated_workload(self, wiki, baseline_cls):
        engine = RDFTX.from_graph(wiki.graph)
        baseline = baseline_cls.from_graph(wiki.graph)
        workload = selection_queries(wiki.graph, count=6) + join_queries(
            wiki.graph, count=4
        )
        for text in workload:
            assert normalize(baseline.query(text)) == normalize(
                engine.query(text)
            ), f"{baseline_cls.name} differs on: {text}"

    def test_unknown_terms(self, uc_graph, baseline_cls):
        baseline = baseline_cls.from_graph(uc_graph)
        assert len(baseline.query("SELECT ?t {MIT rank ?r ?t}")) == 0

    def test_sizeof_positive(self, uc_graph, baseline_cls):
        baseline = baseline_cls.from_graph(uc_graph)
        assert baseline.sizeof() > 0


class TestSizeRelationships:
    """Figure 8(b)'s ordering must hold on a realistic dataset."""

    def test_figure8b_ordering(self, wiki):
        engine = RDFTX.from_graph(wiki.graph)
        sizes = {
            cls.name: cls.from_graph(wiki.graph).sizeof()
            for cls in ALL_BASELINES
        }
        sizes["RDF-TX"] = engine.sizeof()
        raw = wiki.graph.raw_size()
        # Jena NG far above everything else.
        assert sizes["Jena NG"] > 2 * sizes["MySQL"]
        # MySQL and Jena Ref in the 3-4x raw band.
        assert 2 * raw < sizes["MySQL"] < 7 * raw
        assert 2 * raw < sizes["Jena Ref"] < 7 * raw
        # RDF-TX comparable to RDF-3X / Virtuoso, around 1-3x raw.
        assert sizes["RDF-TX"] < sizes["MySQL"]
        assert sizes["RDF-TX"] < 3.5 * raw

    def test_named_graphs_are_tiny(self, wiki):
        ng = NamedGraphBaseline.from_graph(wiki.graph)
        # The paper: most Wikipedia named graphs hold <= 5 triples.
        assert ng.small_graph_fraction(limit=5) > 0.8


class TestBaselineSpecifics:
    def test_rdbms_time_index_path(self, uc_graph):
        """A pattern with no key constants goes through the time index."""
        baseline = RDBMSBaseline.from_graph(uc_graph)
        result = baseline.query("SELECT ?s ?p ?o {?s ?p ?o 2013-06-01}")
        # Valid on that day: UC president/budget/undergraduate,
        # UM president/budget.
        assert len(result) == 5

    def test_reification_quintuples(self, uc_graph):
        baseline = ReificationBaseline.from_graph(uc_graph)
        assert baseline.statement_count == len(uc_graph)
        # Five reified triples per statement.
        assert len(baseline.triples) == 5 * len(uc_graph)

    def test_rdf3x_string_time_encoding(self):
        from repro.baselines.rdf3x import _decode_time, _encode_time

        for value in (0, 1, 15000, NOW):
            assert _decode_time(_encode_time(value)) == value

    def test_rdf3x_reified_storage(self, uc_graph):
        baseline = RDF3XBaseline.from_graph(uc_graph)
        # Five reified triples per fact in the permutation indexes.
        assert len(baseline._pos) == 5 * len(uc_graph)
        result = baseline.query("SELECT ?o {UC budget ?o ?t}")
        assert sorted(result.column("o")) == ["22.7", "25.46"]

    def test_virtuoso_integer_times(self, uc_graph):
        baseline = VirtuosoBaseline.from_graph(uc_graph)
        assert all(isinstance(v, int) for v in baseline.columns["ts"])
        result = baseline.query("SELECT ?o {UC budget ?o ?t}")
        assert sorted(result.column("o")) == ["22.7", "25.46"]
