"""Filter semantics through the full engine: restrictions, built-ins,
boolean connectives, and their interaction with joins."""

import pytest

from repro.engine import RDFTX
from repro.model import NOW, Period, PeriodSet, TemporalGraph, date_to_chronon

D = date_to_chronon


@pytest.fixture(scope="module")
def engine():
    g = TemporalGraph()
    g.add("acme", "ceo", "alice", D("2005-03-01"), D("2011-06-15"))
    g.add("acme", "ceo", "bob", D("2011-06-15"), D("2014-02-01"))
    g.add("acme", "ceo", "carol", D("2014-02-01"))
    g.add("acme", "hq", "london", D("2005-03-01"), D("2012-09-01"))
    g.add("acme", "hq", "berlin", D("2012-09-01"))
    g.add("acme", "employees", "120", D("2005-03-01"), D("2010-01-01"))
    g.add("acme", "employees", "450", D("2010-01-01"), D("2013-01-01"))
    g.add("acme", "employees", "90", D("2013-01-01"))
    g.add("globex", "ceo", "hank", D("2008-01-01"), D("2009-01-01"))
    return RDFTX.from_graph(g)


class TestRestrictions:
    def test_year_restriction_clips_binding(self, engine):
        result = engine.query(
            "SELECT ?who ?t {acme ceo ?who ?t . FILTER(YEAR(?t) = 2011)}"
        )
        by_who = {r["who"]: r["t"] for r in result}
        assert set(by_who) == {"alice", "bob"}
        assert by_who["alice"].last() == D("2011-06-15") - 1
        assert by_who["bob"].first() == D("2011-06-15")

    def test_month_restriction(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . "
            "FILTER(YEAR(?t) = 2011 && MONTH(?t) = 6)}"
        )
        assert sorted(result.column("who")) == ["alice", "bob"]

    def test_range_restriction_both_sides(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . "
            "FILTER(?t >= 2012-01-01 && ?t <= 2013-12-31)}"
        )
        assert result.column("who") == ["bob"]

    def test_contradictory_restrictions_empty(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . "
            "FILTER(YEAR(?t) = 2006 && YEAR(?t) = 2015)}"
        )
        assert len(result) == 0


class TestBuiltins:
    def test_length_filters_short_tenures(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . FILTER(LENGTH(?t) > 3 YEAR)}"
        )
        # alice ~6.3y, bob ~2.6y; carol is live but the data horizon sits
        # one day after her start, so her clipped tenure is a day.
        assert sorted(result.column("who")) == ["alice"]

    def test_total_length(self, engine):
        result = engine.query(
            "SELECT ?n {acme employees ?n ?t . "
            "FILTER(TOTAL_LENGTH(?t) > 4 YEAR)}"
        )
        assert result.column("n") == ["120"]

    def test_tstart_comparison(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . "
            "FILTER(TSTART(?t) >= 2011-01-01)}"
        )
        assert sorted(result.column("who")) == ["bob", "carol"]

    def test_succession_chain(self, engine):
        result = engine.query(
            "SELECT ?old ?new {acme ceo ?old ?t1 . acme ceo ?new ?t2 . "
            "FILTER(TEND(?t1) = TSTART(?t2))}"
        )
        pairs = {(r["old"], r["new"]) for r in result}
        assert pairs == {("alice", "bob"), ("bob", "carol")}


class TestBooleanConnectives:
    def test_disjunction(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . "
            "FILTER(YEAR(?t) = 2006 || YEAR(?t) = 2015)}"
        )
        assert sorted(result.column("who")) == ["alice", "carol"]

    def test_negation(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t . FILTER(!(?who = alice))}"
        )
        assert sorted(result.column("who")) == ["bob", "carol"]

    def test_numeric_comparison_on_objects(self, engine):
        result = engine.query(
            "SELECT ?n {acme employees ?n ?t . FILTER(?n > 100)}"
        )
        assert sorted(result.column("n")) == ["120", "450"]

    def test_mixed_and_or(self, engine):
        result = engine.query(
            "SELECT ?who ?city {acme ceo ?who ?t . acme hq ?city ?t . "
            "FILTER(?city = berlin && (?who = bob || ?who = carol))}"
        )
        pairs = {(r["who"], r["city"]) for r in result}
        assert pairs == {("bob", "berlin"), ("carol", "berlin")}


class TestJoinInteraction:
    def test_restriction_applies_to_joined_binding(self, engine):
        result = engine.query(
            "SELECT ?who ?city ?t {acme ceo ?who ?t . acme hq ?city ?t . "
            "FILTER(YEAR(?t) = 2012)}"
        )
        pairs = {(r["who"], r["city"]) for r in result}
        assert pairs == {("bob", "london"), ("bob", "berlin")}

    def test_join_produces_intersected_periods(self, engine):
        result = engine.query(
            "SELECT ?who ?city ?t {acme ceo ?who ?t . acme hq ?city ?t}"
        )
        for row in result:
            assert isinstance(row["t"], PeriodSet)
            assert not row["t"].is_empty
        # bob x london: [2011-06-15, 2012-09-01).
        bob_london = next(
            r["t"] for r in result
            if r["who"] == "bob" and r["city"] == "london"
        )
        assert bob_london == PeriodSet(
            [Period(D("2011-06-15"), D("2012-09-01"))]
        )

    def test_filter_referencing_two_periods(self, engine):
        result = engine.query(
            "SELECT ?who {acme ceo ?who ?t1 . acme hq berlin ?t2 . "
            "FILTER(TSTART(?t1) >= TSTART(?t2))}"
        )
        assert result.column("who") == ["carol"]
