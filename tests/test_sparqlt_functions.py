"""Tests for SPARQLT filter semantics (restrictions, built-ins, booleans)."""

import pytest

from repro.model.time import NOW, Period, PeriodSet, date_to_chronon, year_range
from repro.sparqlt import EvaluationError, parse_expression
from repro.sparqlt.functions import (
    evaluate,
    eval_value,
    pushdown_window,
    restrict,
    restriction_target,
)

D = date_to_chronon
HORIZON = D("2016-01-01")


def ps(*pairs):
    return PeriodSet([Period(a, b) for a, b in pairs])


class TestRestrictionTarget:
    def test_year_restriction(self):
        expr = parse_expression("YEAR(?t) = 2013")
        assert restriction_target(expr) == "t"

    def test_plain_comparison(self):
        assert restriction_target(parse_expression("?t <= 01/01/2013")) == "t"

    def test_flipped(self):
        assert restriction_target(parse_expression("2013 >= YEAR(?t)")) == "t"

    def test_non_restrictions(self):
        assert restriction_target(parse_expression("LENGTH(?t) > 10")) is None
        assert restriction_target(parse_expression("TSTART(?t) = TEND(?u)")) is None
        assert restriction_target(parse_expression("?a = ?b")) is None


class TestRestrict:
    def test_year_equals(self):
        periods = ps((D("2012-06-01"), D("2014-06-01")))
        expr = parse_expression("YEAR(?t) = 2013")
        got = restrict(expr, periods, HORIZON)
        assert got == PeriodSet([year_range(2013)])

    def test_year_lte(self):
        periods = ps((D("2012-06-01"), D("2014-06-01")))
        got = restrict(parse_expression("YEAR(?t) <= 2012"), periods, HORIZON)
        assert got == ps((D("2012-06-01"), D("2013-01-01")))

    def test_chronon_comparison(self):
        periods = ps((10, 50))
        got = restrict(parse_expression("?t > 01/20/1970"), periods, HORIZON)
        assert got == ps((20, 50))

    def test_month_restriction(self):
        periods = ps((D("2013-01-15"), D("2013-04-10")))
        got = restrict(parse_expression("MONTH(?t) = 2"), periods, HORIZON)
        assert got == ps((D("2013-02-01"), D("2013-03-01")))

    def test_day_restriction(self):
        periods = ps((D("2013-01-30"), D("2013-02-03")))
        got = restrict(parse_expression("DAY(?t) = 1"), periods, HORIZON)
        assert got == PeriodSet([Period.point(D("2013-02-01"))])

    def test_live_period_clipped_for_calendar(self):
        periods = PeriodSet([Period(D("2015-12-01"), NOW)])
        got = restrict(parse_expression("MONTH(?t) = 12"), periods, HORIZON)
        assert got == ps((D("2015-12-01"), D("2016-01-01")))

    def test_not_a_restriction_raises(self):
        with pytest.raises(EvaluationError):
            restrict(parse_expression("LENGTH(?t) > 10"), ps((1, 5)), HORIZON)


class TestPushdownWindow:
    def test_year(self):
        window = pushdown_window(parse_expression("YEAR(?t) = 2013"))
        assert window == year_range(2013)

    def test_before(self):
        window = pushdown_window(parse_expression("?t <= 01/01/2013"))
        assert window == Period(0, D("2013-01-01") + 1)

    def test_month_gives_none(self):
        assert pushdown_window(parse_expression("MONTH(?t) = 2")) is None

    def test_non_restriction_gives_none(self):
        assert pushdown_window(parse_expression("LENGTH(?t) > 10")) is None
        assert pushdown_window(parse_expression("?a = 3")) is None


class TestBuiltins:
    def test_tstart_tend(self):
        row = {"t": ps((10, 20), (30, 40))}
        assert eval_value(parse_expression("TSTART(?t)"), row, HORIZON) == 10
        # TEND is exclusive: the first chronon after the set (see module
        # docs — this is what makes the paper's Example 5 match its data).
        assert eval_value(parse_expression("TEND(?t)"), row, HORIZON) == 40

    def test_tend_live(self):
        row = {"t": PeriodSet([Period(10, NOW)])}
        assert eval_value(parse_expression("TEND(?t)"), row, HORIZON) == NOW

    def test_length_max_duration(self):
        """LENGTH returns the max duration across intervals (Sec 3.1)."""
        row = {"t": ps((10, 20), (30, 70))}
        assert eval_value(parse_expression("LENGTH(?t)"), row, HORIZON) == 40

    def test_total_length(self):
        row = {"t": ps((10, 20), (30, 70))}
        assert (
            eval_value(parse_expression("TOTAL_LENGTH(?t)"), row, HORIZON) == 50
        )

    def test_length_clips_live_to_horizon(self):
        row = {"t": PeriodSet([Period(HORIZON - 100, NOW)])}
        assert eval_value(parse_expression("LENGTH(?t)"), row, HORIZON) == 100

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            eval_value(parse_expression("LENGTH(?missing)"), {}, HORIZON)


class TestEvaluate:
    def test_example_3_combined(self):
        """YEAR(?t) <= 2010 && LENGTH(?t) > 365 DAY over a long presidency."""
        expr = parse_expression("YEAR(?t) <= 2010 && LENGTH(?t) > 365 DAY")
        long_presidency = {
            "t": ps((D("2005-01-01"), D("2010-06-01")))
        }
        short_presidency = {
            "t": ps((D("2010-01-01"), D("2010-06-01")))
        }
        assert evaluate(expr, long_presidency, HORIZON)
        # The short presidency satisfies the YEAR conjunct (existentially)
        # but fails LENGTH > 365.
        assert not evaluate(expr, short_presidency, HORIZON)

    def test_succession_meet(self):
        expr = parse_expression("TEND(?t1) = TSTART(?t2)")
        row = {"t1": ps((10, 20)), "t2": ps((20, 40))}
        assert evaluate(expr, row, HORIZON)
        row2 = {"t1": ps((10, 20)), "t2": ps((25, 40))}
        assert not evaluate(expr, row2, HORIZON)

    def test_tend_is_exclusive_for_meet(self):
        """TEND returns the half-open end, making Example 5 match Table 2."""
        expr = parse_expression("TEND(?t1) = TSTART(?t2)")
        assert evaluate(expr, {"t1": ps((10, 20)), "t2": ps((20, 30))}, HORIZON)
        assert not evaluate(
            expr, {"t1": ps((10, 19)), "t2": ps((20, 30))}, HORIZON
        )

    def test_boolean_connectives(self):
        row = {"a": "x", "b": "5"}
        assert evaluate(parse_expression('?a = "x" && ?b = 5'), row, HORIZON)
        assert evaluate(parse_expression('?a = "y" || ?b = 5'), row, HORIZON)
        assert evaluate(parse_expression('!(?a = "y")'), row, HORIZON)

    def test_numeric_coercion(self):
        row = {"budget": "22.7"}
        assert evaluate(parse_expression("?budget > 20"), row, HORIZON)
        assert not evaluate(parse_expression("?budget > 25"), row, HORIZON)

    def test_non_numeric_coercion_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(parse_expression("?name > 20"), {"name": "Bob"}, HORIZON)

    def test_existential_point_comparison(self):
        expr = parse_expression("?t = 01/15/1970")
        assert evaluate(expr, {"t": ps((10, 20))}, HORIZON)
        assert not evaluate(expr, {"t": ps((20, 30))}, HORIZON)

    def test_temporal_var_equality(self):
        expr = parse_expression("?t1 = ?t2")
        assert evaluate(expr, {"t1": ps((10, 20)), "t2": ps((15, 30))}, HORIZON)
        assert not evaluate(
            expr, {"t1": ps((10, 20)), "t2": ps((25, 30))}, HORIZON
        )
