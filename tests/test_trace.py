"""The span tracer: tree shape, context propagation, sampling, kill switch.

Covers :mod:`repro.obs.trace` directly (no HTTP): span nesting via
``contextvars``, parent inheritance across thread-pool submissions,
deterministic sampling, the ring buffer, the ``REPRO_OBS`` kill switch,
and the histogram type feeding the latency percentiles.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import metrics, trace
from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram


@pytest.fixture()
def buffer():
    return trace.TraceBuffer(capacity=8)


# ----------------------------------------------------------------- span tree


class TestSpanTree:
    def test_nesting_follows_lexical_scope(self, buffer):
        with trace.start_trace("request", buffer):
            with trace.span("outer"):
                with trace.span("inner"):
                    pass
            with trace.span("sibling"):
                pass
        (tr,) = buffer.recent()
        root = tr.root
        assert root.name == "request"
        assert [c.name for c in root.children] == ["outer", "sibling"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner"]

    def test_durations_are_closed_and_ordered(self, buffer):
        with trace.start_trace("request", buffer):
            with trace.span("child"):
                pass
        (tr,) = buffer.recent()
        child = tr.root.children[0]
        assert child.end_ms is not None
        assert child.duration_ms >= 0.0
        assert tr.duration_ms >= child.duration_ms

    def test_attrs_and_trace_attrs(self, buffer):
        with trace.start_trace("request", buffer, path="/query"):
            with trace.span("child", kind="scan"):
                trace.annotate(rows=7)
            trace.annotate_trace(cache_hit=True)
        (tr,) = buffer.recent()
        assert tr.attrs == {"path": "/query", "cache_hit": True}
        assert tr.root.children[0].attrs == {"kind": "scan", "rows": 7}

    def test_span_survives_exceptions(self, buffer):
        with pytest.raises(RuntimeError):
            with trace.start_trace("request", buffer):
                with trace.span("failing"):
                    raise RuntimeError("boom")
        (tr,) = buffer.recent()
        failing = tr.root.children[0]
        assert failing.end_ms is not None  # closed despite the raise

    def test_span_outside_trace_is_noop(self, buffer):
        with trace.span("orphan"):
            pass
        assert len(buffer) == 0
        assert trace.current_trace_id() is None
        assert not trace.active()

    def test_trace_ids_are_unique(self, buffer):
        for _ in range(3):
            with trace.start_trace("request", buffer):
                pass
        ids = [t.trace_id for t in buffer.recent()]
        assert len(set(ids)) == 3

    def test_as_dict_is_json_shaped(self, buffer):
        import json

        with trace.start_trace("request", buffer):
            with trace.span("child"):
                pass
        (tr,) = buffer.recent()
        payload = json.loads(json.dumps(tr.as_dict()))
        assert payload["trace_id"] == tr.trace_id
        assert payload["root"]["children"][0]["name"] == "child"


# ------------------------------------------------------- context propagation


class TestPoolPropagation:
    def test_submit_carries_parent_span(self, buffer):
        def work(i):
            with trace.span("task", i=i):
                return trace.current_trace_id()

        with ThreadPoolExecutor(max_workers=2) as pool:
            with trace.start_trace("request", buffer) as tr:
                futures = [
                    trace.submit(pool, work, i) for i in range(4)
                ]
                seen = [f.result() for f in futures]
        assert seen == [tr.trace_id] * 4
        (stored,) = buffer.recent()
        names = [c.name for c in stored.root.children]
        assert names == ["task"] * 4
        assert sorted(c.attrs["i"] for c in stored.root.children) == [
            0, 1, 2, 3,
        ]

    def test_submit_outside_trace_degrades_to_plain(self):
        with ThreadPoolExecutor(max_workers=1) as pool:
            future = trace.submit(pool, lambda: trace.active())
            assert future.result() is False

    def test_concurrent_traces_do_not_cross(self, buffer):
        """Two traces running on two threads keep separate span trees."""
        import threading

        barrier = threading.Barrier(2)

        def run(tag):
            with trace.start_trace(f"request-{tag}", buffer):
                barrier.wait(timeout=5)
                with trace.span(f"child-{tag}"):
                    pass

        threads = [
            threading.Thread(target=run, args=(t,)) for t in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        by_name = {t.name: t for t in buffer.recent()}
        assert set(by_name) == {"request-a", "request-b"}
        for tag in ("a", "b"):
            children = by_name[f"request-{tag}"].root.children
            assert [c.name for c in children] == [f"child-{tag}"]


# ------------------------------------------------------------------ sampling


class TestSampler:
    def test_rate_one_keeps_everything(self):
        sampler = trace.Sampler(1.0)
        assert all(sampler.keep() for _ in range(10))

    def test_rate_zero_keeps_nothing(self):
        sampler = trace.Sampler(0.0)
        assert not any(sampler.keep() for _ in range(10))

    def test_fractional_rate_is_deterministic(self):
        sampler = trace.Sampler(0.25)
        kept = [sampler.keep() for _ in range(12)]
        assert kept == [False, False, False, True] * 3

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            trace.Sampler(1.5)
        with pytest.raises(ValueError):
            trace.Sampler(-0.1)


# --------------------------------------------------------------- ring buffer


class TestTraceBuffer:
    def test_capacity_evicts_oldest(self):
        buffer = trace.TraceBuffer(capacity=2)
        for i in range(4):
            with trace.start_trace(f"t{i}", buffer):
                pass
        names = [t.name for t in buffer.recent()]
        assert names == ["t3", "t2"]

    def test_get_by_id(self, buffer):
        with trace.start_trace("wanted", buffer) as tr:
            pass
        assert buffer.get(tr.trace_id) is tr
        assert buffer.get("nope") is None

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            trace.TraceBuffer(capacity=0)


# --------------------------------------------------------------- kill switch


class TestKillSwitch:
    def test_disabled_records_nothing(self, buffer):
        metrics.set_enabled(False)
        try:
            with trace.start_trace("request", buffer) as tr:
                with trace.span("child"):
                    trace.annotate(rows=1)
                trace.annotate_trace(cache_hit=True)
                assert not trace.active()
                assert trace.current_trace_id() is None
            assert not isinstance(tr, trace.Trace)
        finally:
            metrics.set_enabled(True)
        assert len(buffer) == 0

    def test_disabled_histogram_records_nothing(self):
        hist = Histogram("test.disabled_ms")
        metrics.set_enabled(False)
        try:
            hist.observe(5.0)
        finally:
            metrics.set_enabled(True)
        assert hist.count == 0


# ---------------------------------------------------------------- histogram


class TestHistogram:
    def test_quantiles_from_buckets(self):
        hist = Histogram("test.latency_ms")
        for value in (0.3, 1.5, 7.0, 42.0, 42.0, 900.0):
            hist.observe(value)
        assert hist.count == 6
        assert hist.sum_ms == pytest.approx(992.8)
        # p50 lands in the (5, 10] bucket via interpolation.
        assert 5.0 < hist.quantile(0.5) <= 10.0
        assert hist.quantile(0.99) <= 1000.0

    def test_overflow_clamps_to_last_bound(self):
        hist = Histogram("test.overflow_ms", bounds=(1.0, 10.0))
        hist.observe(99999.0)
        assert hist.as_dict()["overflow"] == 1
        assert hist.quantile(0.5) == 10.0

    def test_empty_histogram(self):
        hist = Histogram("test.empty_ms")
        assert hist.quantile(0.5) == 0.0
        assert hist.as_dict()["count"] == 0

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("test.bad_ms", bounds=(1.0, 1.0))

    def test_registry_snapshot_and_reset(self):
        registry = metrics.Registry()
        hist = registry.histogram("service.server.request_ms")
        hist.observe(3.0)
        snap = registry.snapshot()
        assert snap["histograms"]["service.server.request_ms"]["count"] == 1
        registry.reset()
        assert hist.count == 0

    def test_registry_returns_same_instance(self):
        registry = metrics.Registry()
        first = registry.histogram("service.server.request_ms")
        second = registry.histogram("service.server.request_ms")
        assert first is second

    def test_default_buckets_cover_sub_ms_to_ten_s(self):
        assert DEFAULT_BUCKETS_MS[0] <= 0.1
        assert DEFAULT_BUCKETS_MS[-1] >= 10_000.0
        assert list(DEFAULT_BUCKETS_MS) == sorted(DEFAULT_BUCKETS_MS)


# ------------------------------------------------------------ prometheus text


class TestPrometheusRendering:
    def test_counter_gauge_histogram_series(self):
        registry = metrics.Registry()
        registry.counter("service.server.requests").inc(3)
        registry.gauge("service.server.inflight").set(2)
        hist = registry.histogram(
            "service.server.request_ms", bounds=(1.0, 10.0)
        )
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)  # overflow
        text = registry.render_prometheus()
        assert "# TYPE repro_service_server_requests_total counter" in text
        assert "repro_service_server_requests_total 3" in text
        assert "repro_service_server_inflight 2" in text
        assert '# TYPE repro_service_server_request_ms histogram' in text
        assert 'repro_service_server_request_ms_bucket{le="1"} 1' in text
        assert 'repro_service_server_request_ms_bucket{le="10"} 2' in text
        assert 'repro_service_server_request_ms_bucket{le="+Inf"} 3' in text
        assert "repro_service_server_request_ms_count 3" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = metrics.Registry()
        hist = registry.histogram(
            "service.store.query_ms", bounds=(1.0, 2.0, 5.0)
        )
        for value in (0.5, 1.5, 1.7, 4.0):
            hist.observe(value)
        text = registry.render_prometheus()
        assert 'query_ms_bucket{le="1"} 1' in text
        assert 'query_ms_bucket{le="2"} 3' in text
        assert 'query_ms_bucket{le="5"} 4' in text
