"""The on-demand wall-clock sampling profiler."""

import threading
import time

import pytest

from repro.obs import metrics
from repro.obs.sampler import (
    MAX_SECONDS,
    ProfilerBusy,
    ProfilerDisabled,
    SamplingProfiler,
    profile,
)


def _burn(stop):
    while not stop.is_set():
        sum(i * i for i in range(200))


@pytest.fixture()
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=_burn, args=(stop,), daemon=True)
    thread.start()
    yield
    stop.set()
    thread.join(timeout=5)


def test_profile_sees_the_busy_thread(busy_thread):
    collapsed = profile(0.25, interval=0.005)
    assert collapsed.strip()
    assert "test_profiler:_burn" in collapsed
    heaviest = collapsed.splitlines()[0]
    stack, count = heaviest.rsplit(" ", 1)
    assert int(count) >= 1
    # Root-first stacks: the thread bootstrap comes before the leaf.
    frames = stack.split(";")
    assert len(frames) >= 2


def test_profiler_excludes_its_own_thread():
    # With no other threads running Python code, the sampler may still
    # see pytest's machinery — but never its own collect() frames.
    collapsed = profile(0.05, interval=0.005)
    assert "sampler:collect" not in collapsed


def test_counts_accumulate(busy_thread):
    sampler = SamplingProfiler(interval=0.005)
    sampler.collect(0.1)
    assert sampler.samples >= 1
    text = sampler.collapsed()
    total = sum(int(line.rsplit(" ", 1)[1]) for line in text.splitlines())
    assert total == sampler.samples


def test_single_concurrent_profile(busy_thread):
    results = []

    def run():
        try:
            results.append(profile(0.3, interval=0.01))
        except ProfilerBusy:
            results.append(ProfilerBusy)

    first = threading.Thread(target=run)
    first.start()
    time.sleep(0.05)  # let the first profile take the slot
    with pytest.raises(ProfilerBusy):
        profile(0.1)
    first.join(timeout=10)
    assert len(results) == 1
    assert results[0] is not ProfilerBusy


def test_rejects_out_of_range_durations():
    with pytest.raises(ValueError):
        profile(0.0)
    with pytest.raises(ValueError):
        profile(MAX_SECONDS + 1)
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)


def test_disabled_by_kill_switch():
    metrics.set_enabled(False)
    try:
        with pytest.raises(ProfilerDisabled):
            profile(0.1)
    finally:
        metrics.set_enabled(True)
