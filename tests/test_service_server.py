"""HTTP endpoint: routes, JSON encoding, admission control, error mapping."""

import http.client
import json
import threading
import time

import pytest

from repro.model import NOW, date_to_chronon
from repro.service import TemporalStore, serve

from tests.test_service_store import fixture_graph

D = date_to_chronon


@pytest.fixture()
def store(tmp_path):
    with TemporalStore(tmp_path) as s:
        s.load_dataset(fixture_graph())
        yield s


@pytest.fixture()
def service(store):
    svc = serve(store, port=0, max_inflight=4, request_timeout=10.0)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    yield svc
    svc.shutdown()
    thread.join(timeout=10)


def _request(service, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=15)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body,
                     {"Content-Type": "application/json"} if body else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self, service):
        status, body = _request(service, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["revision"] == 0
        assert body["live_facts"] == 3
        # cluster-awareness fields: a plain store is a standalone node
        # with no shard id and no topology section.
        assert body["role"] == "standalone"
        assert body["shard_id"] is None
        assert body["applied_lsn"] == body["revision"]
        assert "cluster" not in body

    def test_healthz_reports_role_and_shard(self, store):
        svc = serve(store, port=0, role="shard", shard_id=2)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _request(svc, "GET", "/healthz")
            assert status == 200
            assert body["role"] == "shard"
            assert body["shard_id"] == 2
        finally:
            svc.shutdown()
            thread.join(timeout=10)

    def test_metrics_json(self, service):
        status, body = _request(service, "GET", "/metrics")
        assert status == 200
        assert "counters" in body

    def test_unknown_paths_404(self, service):
        assert _request(service, "GET", "/nope")[0] == 404
        assert _request(service, "POST", "/nope", {})[0] == 404

    def test_query_rows_and_revision(self, service):
        status, body = _request(service, "POST", "/query", {
            "query": "SELECT ?o {UC president ?o ?t}",
        })
        assert status == 200
        assert body["variables"] == ["o"]
        assert sorted(row["o"] for row in body["rows"]) == [
            "Janet_Napolitano", "Mark_Yudof",
        ]
        assert body["revision"] == 0

    def test_query_periods_encode_now_as_null(self, service):
        _, body = _request(service, "POST", "/query", {
            "query": "SELECT ?o ?t {UC president ?o ?t}",
        })
        periods = {row["o"]: row["t"] for row in body["rows"]}
        assert periods["Mark_Yudof"] == [
            [D("06/16/2008"), D("09/30/2013")]
        ]
        assert periods["Janet_Napolitano"] == [[D("09/30/2013"), None]]
        assert NOW not in [
            end for spans in periods.values() for _, end in spans
        ]

    def test_query_with_profile(self, service):
        _, body = _request(service, "POST", "/query", {
            "query": "SELECT ?o {UC president ?o ?t}",
            "profile": True,
        })
        assert "profile" in body
        assert "plan" in body["profile"]
        assert body["profile"]["total_ms"] >= 0

    def test_update_insert_then_visible(self, service, store):
        status, body = _request(service, "POST", "/update", {
            "op": "insert", "subject": "UC", "predicate": "chancellor",
            "object": "Carol_Christ", "time": "2017-07-01",
        })
        assert status == 200
        assert body["applied"] == 1
        assert body["revision"] == 1
        assert body["trace_id"]
        _, result = _request(service, "POST", "/query", {
            "query": "SELECT ?o {UC chancellor ?o ?t}",
        })
        assert [row["o"] for row in result["rows"]] == ["Carol_Christ"]
        assert result["revision"] == 1

    def test_update_batch(self, service):
        status, body = _request(service, "POST", "/update", {"updates": [
            {"op": "insert", "subject": "s1", "predicate": "p",
             "object": "o", "time": D("01/01/2016")},
            {"op": "insert", "subject": "s2", "predicate": "p",
             "object": "o", "time": D("01/02/2016")},
            {"op": "delete", "subject": "s1", "predicate": "p",
             "object": "o", "time": D("01/03/2016")},
        ]})
        assert status == 200
        assert body["applied"] == 3
        assert body["revision"] == 3

    def test_checkpoint_endpoint(self, service, store):
        _request(service, "POST", "/update", {
            "op": "insert", "subject": "a", "predicate": "b",
            "object": "c", "time": D("01/01/2016"),
        })
        status, body = _request(service, "POST", "/checkpoint")
        assert status == 200
        assert body["revision"] == 1
        assert body["snapshot"].endswith("store.snap")


class TestErrorMapping:
    def test_malformed_json_400(self, service):
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=15)
        try:
            conn.request("POST", "/query", "{not json",
                         {"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_missing_query_400(self, service):
        assert _request(service, "POST", "/query", {})[0] == 400

    def test_parse_error_400(self, service):
        status, body = _request(service, "POST", "/query",
                                {"query": "SELECT ???"})
        assert status == 400
        assert "error" in body

    def test_bad_op_400(self, service):
        status, _ = _request(service, "POST", "/update", {
            "op": "upsert", "subject": "a", "predicate": "b",
            "object": "c", "time": 1,
        })
        assert status == 400

    def test_bad_time_400(self, service):
        status, _ = _request(service, "POST", "/update", {
            "op": "insert", "subject": "a", "predicate": "b",
            "object": "c", "time": "not-a-date",
        })
        assert status == 400

    def test_duplicate_insert_409(self, service):
        update = {"op": "insert", "subject": "a", "predicate": "b",
                  "object": "c", "time": D("01/01/2016")}
        assert _request(service, "POST", "/update", update)[0] == 200
        status, body = _request(service, "POST", "/update", update)
        assert status == 409
        assert "already live" in body["error"]

    def test_delete_missing_409(self, service):
        status, _ = _request(service, "POST", "/update", {
            "op": "delete", "subject": "ghost", "predicate": "b",
            "object": "c", "time": D("01/01/2016"),
        })
        assert status == 409


class TestAdmissionControl:
    def test_saturated_server_responds_503(self, store, monkeypatch):
        release = threading.Event()
        original = store.query

        def slow_query(text, profile=False):
            release.wait(timeout=30)
            return original(text, profile=profile)

        monkeypatch.setattr(store, "query", slow_query)
        svc = serve(store, port=0, max_inflight=1, request_timeout=30.0,
                    admission_timeout=0.05)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            statuses = []

            def fire():
                statuses.append(_request(svc, "POST", "/query", {
                    "query": "SELECT ?o {UC president ?o ?t}",
                })[0])

            first = threading.Thread(target=fire)
            first.start()
            time.sleep(0.3)  # let it occupy the only slot
            second = threading.Thread(target=fire)
            second.start()
            second.join(timeout=15)
            release.set()
            first.join(timeout=15)
            assert sorted(statuses) == [200, 503]
        finally:
            release.set()
            svc.shutdown()
            thread.join(timeout=10)

    def test_deadline_overrun_responds_504(self, store, monkeypatch):
        original = store.query

        def slow_query(text, profile=False):
            time.sleep(1.0)
            return original(text, profile=profile)

        monkeypatch.setattr(store, "query", slow_query)
        svc = serve(store, port=0, max_inflight=2, request_timeout=0.1)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _request(svc, "POST", "/query", {
                "query": "SELECT ?o {UC president ?o ?t}",
            })
            assert status == 504
            assert "deadline" in body["error"]
        finally:
            svc.shutdown()
            thread.join(timeout=10)
