"""Tests for temporal joins over MVBT (Section 5.2.2)."""

import random

from repro.model.time import MIN_TIME, NOW, Period, PeriodSet
from repro.mvbt import (
    MAX_KEY,
    MIN_KEY,
    MVBT,
    MVBTConfig,
    bulk_load,
    hash_join,
    range_interval_scan,
    synchronized_join,
)

SMALL = MVBTConfig(block_capacity=8, weak_min=2, epsilon=1)


def build_tree(records):
    tree = MVBT(SMALL)
    bulk_load(tree, records)
    return tree


def reference_join(left_records, right_records, lk, rk):
    """Naive nested-loop temporal join over interval records."""
    out = {}
    for k1, s1, e1 in left_records:
        for k2, s2, e2 in right_records:
            if lk(k1) != rk(k2):
                continue
            lo, hi = max(s1, s2), min(e1, e2)
            if lo < hi:
                out.setdefault((k1, k2), []).append(Period(lo, hi))
    return {pair: PeriodSet(parts) for pair, parts in out.items()}


class TestHashJoin:
    def test_simple_equijoin_with_overlap(self):
        left = build_tree([((1, 10, 0), 5, 20), ((2, 11, 0), 5, 20)])
        right = build_tree([((1, 30, 0), 10, 30)])
        got = dict_of(
            hash_join(
                range_interval_scan(left),
                range_interval_scan(right),
                left_key=lambda k: k[0],
                right_key=lambda k: k[0],
            )
        )
        assert got == {
            ((1, 10, 0), (1, 30, 0)): PeriodSet([Period(10, 20)])
        }

    def test_no_temporal_overlap_means_no_result(self):
        left = build_tree([((1, 0, 0), 5, 10)])
        right = build_tree([((1, 1, 1), 10, 20)])
        got = list(
            hash_join(
                range_interval_scan(left),
                range_interval_scan(right),
                lambda k: k[0],
                lambda k: k[0],
            )
        )
        assert got == []

    def test_pieces_coalesce_across_splits(self):
        """Records split across MVBT nodes still join on full periods."""
        records = [((i, 0, 0), 1, 100) for i in range(40)]
        left = build_tree(records)
        right = build_tree([((0, 5, 5), 50, 200)])
        got = dict_of(
            hash_join(
                range_interval_scan(left),
                range_interval_scan(right),
                lambda k: k[0],
                lambda k: k[0],
            )
        )
        assert got[((0, 0, 0), (0, 5, 5))] == PeriodSet([Period(50, 100)])


def dict_of(join_iter):
    return {(l, r): ps for l, r, ps in join_iter}


class TestSynchronizedJoin:
    def _random_records(self, seed, n, keyspace):
        rng = random.Random(seed)
        records = []
        for _ in range(n):
            start = rng.randint(0, 500)
            records.append(
                (
                    (rng.randint(0, keyspace), rng.randint(0, 5), rng.randint(0, 5)),
                    start,
                    start + rng.randint(1, 300),
                )
            )
        # Dedup identical keys with overlapping periods to keep bulk_load legal.
        return self._make_loadable(records)

    @staticmethod
    def _make_loadable(records):
        by_key = {}
        out = []
        for key, start, end in sorted(records, key=lambda r: (r[0], r[1])):
            prev_end = by_key.get(key, -1)
            if start < prev_end:
                continue
            by_key[key] = end
            out.append((key, start, end))
        return out

    def test_matches_hash_join(self):
        left_records = self._random_records(1, 120, 15)
        right_records = self._random_records(2, 120, 15)
        left = build_tree(left_records)
        right = build_tree(right_records)
        lk = rk = lambda k: k[0]
        expected = reference_join(left_records, right_records, lk, rk)
        got_sync = dict_of(synchronized_join(left, right, lk, rk))
        got_hash = dict_of(
            hash_join(
                range_interval_scan(left),
                range_interval_scan(right),
                lk,
                rk,
            )
        )
        assert got_hash == expected
        assert got_sync == expected

    def test_windowed(self):
        left_records = self._random_records(5, 80, 10)
        right_records = self._random_records(6, 80, 10)
        left = build_tree(left_records)
        right = build_tree(right_records)
        lk = rk = lambda k: k[0]
        t1, t2 = 100, 300
        got = dict_of(
            synchronized_join(left, right, lk, rk, t1=t1, t2=t2)
        )
        full = reference_join(left_records, right_records, lk, rk)
        window = Period(t1, t2)
        expected = {}
        for pair, ps in full.items():
            clipped = ps.restrict(window)
            if not clipped.is_empty:
                expected[pair] = clipped
        clipped_got = {
            pair: ps.restrict(window)
            for pair, ps in got.items()
            if not ps.restrict(window).is_empty
        }
        assert clipped_got == expected

    def test_cache_effectiveness(self):
        """The record cache avoids most repeated page decodes."""
        from repro.mvbt.join import _LeafCache

        left = build_tree([((i, 0, 0), 1, 50) for i in range(30)])
        cache = _LeafCache(capacity=128)
        leaves = list(left.leaf_nodes())
        for _ in range(5):
            for leaf in leaves:
                cache.records(leaf)
        assert cache.misses == len(leaves)
        assert cache.hits == 4 * len(leaves)

    def test_cache_lru_promotion(self):
        """A hit keeps the leaf resident: eviction takes the *least
        recently used* entry, not the oldest insertion (FIFO would evict
        the hot left page mid-run)."""
        from repro.mvbt.join import _LeafCache

        tree = build_tree([((i, 0, 0), 1, 50) for i in range(40)])
        leaves = list(tree.leaf_nodes())
        assert len(leaves) >= 3
        a, b, c = leaves[0], leaves[1], leaves[2]
        cache = _LeafCache(capacity=2)
        cache.records(a)
        cache.records(b)
        cache.records(a)  # promote a: b is now least recently used
        cache.records(c)  # evicts b, not a
        hits_before = cache.hits
        cache.records(a)
        assert cache.hits == hits_before + 1
        misses_before = cache.misses
        cache.records(b)
        assert cache.misses == misses_before + 1

    def test_cache_keys_on_stable_uid(self):
        """Entries key on ``leaf.uid``: two distinct leaves must never
        share an entry even if ``id()`` aliases after a collection."""
        from repro.mvbt.join import _LeafCache

        tree = build_tree([((i, 0, 0), 1, 50) for i in range(40)])
        leaves = list(tree.leaf_nodes())
        cache = _LeafCache(capacity=128)
        seen = {}
        for leaf in leaves:
            seen[leaf.uid] = cache.records(leaf)
        assert len(seen) == len(leaves)
        for leaf in leaves:
            assert cache.records(leaf) is seen[leaf.uid]

    def test_empty_inputs(self):
        left = MVBT(SMALL)
        right = MVBT(SMALL)
        assert list(
            synchronized_join(left, right, lambda k: k, lambda k: k)
        ) == []
