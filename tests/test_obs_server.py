"""Serving-layer observability: trace ids, /debug/traces, histograms,
Prometheus text, structured logs, and behaviour under concurrent load."""

import http.client
import io
import json
import threading
import time

import pytest

from repro.model import date_to_chronon
from repro.obs import log as obslog
from repro.obs import metrics
from repro.obs import workload
from repro.service import TemporalStore, serve

from tests.test_service_store import fixture_graph

D = date_to_chronon

QUERY = "SELECT ?o {UC president ?o ?t}"
JOIN_QUERY = "SELECT ?o ?b {UC president ?o ?t . UC budget ?b ?u}"


@pytest.fixture()
def store(tmp_path):
    # group_size=1 so every update group-commits immediately — the WAL
    # sync span shows up in each update's trace.
    with TemporalStore(tmp_path, group_size=1) as s:
        s.load_dataset(fixture_graph())
        yield s


def _serve(store, **kwargs):
    svc = serve(store, port=0, max_inflight=4, request_timeout=10.0,
                **kwargs)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    return svc, thread


@pytest.fixture()
def service(store):
    svc, thread = _serve(store)
    yield svc
    svc.shutdown()
    thread.join(timeout=10)


def _request(service, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=15)
    try:
        body = json.dumps(payload) if payload is not None else None
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body, send_headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _json_request(service, method, path, payload=None, headers=None):
    status, raw = _request(service, method, path, payload, headers)
    return status, json.loads(raw)


def _span_names(node, out=None):
    if out is None:
        out = []
    out.append(node["name"])
    for child in node["children"]:
        _span_names(child, out)
    return out


# -------------------------------------------------------------- trace ids


class TestTraceIds:
    def test_query_response_carries_trace_id(self, service):
        status, body = _json_request(service, "POST", "/query",
                                     {"query": QUERY})
        assert status == 200
        assert body["trace_id"]

    def test_debug_traces_returns_the_span_tree(self, service):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        trace_id = body["trace_id"]
        status, detail = _json_request(
            service, "GET", f"/debug/traces?id={trace_id}"
        )
        assert status == 200
        assert detail["trace_id"] == trace_id
        assert detail["name"] == "POST /query"
        names = _span_names(detail["root"])
        assert "store.query" in names
        assert "admission.wait" in names
        assert "scan.pattern" in names  # the index-scan leaf
        assert detail["attrs"]["status"] == 200
        assert detail["attrs"]["cache_hit"] is False

    def test_join_query_records_join_span(self, service):
        _, body = _json_request(service, "POST", "/query",
                                {"query": JOIN_QUERY})
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={body['trace_id']}"
        )
        names = _span_names(detail["root"])
        assert names.count("scan.pattern") == 2
        assert any(n.startswith("join.") for n in names)

    def test_update_trace_has_wal_spans(self, service):
        _, body = _json_request(service, "POST", "/update", {
            "op": "insert", "subject": "UC", "predicate": "chancellor",
            "object": "Carol_Christ", "time": D("07/01/2017"),
        })
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={body['trace_id']}"
        )
        names = _span_names(detail["root"])
        assert "store.update" in names
        assert "wal.append" in names
        assert "wal.sync" in names  # group_size=1 commits per update
        assert "lock.write.wait" in names

    def test_cached_repeat_is_marked_hit(self, service):
        _json_request(service, "POST", "/query", {"query": QUERY})
        _, second = _json_request(service, "POST", "/query",
                                  {"query": QUERY})
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={second['trace_id']}"
        )
        assert detail["attrs"]["cache_hit"] is True
        names = _span_names(detail["root"])
        assert "cache.lookup" in names
        assert "scan.pattern" not in names  # served without scanning

    def test_trace_listing_and_missing_id(self, service):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        status, listing = _json_request(service, "GET", "/debug/traces")
        assert status == 200
        ids = [t["trace_id"] for t in listing["traces"]]
        assert body["trace_id"] in ids
        # Malformed id (can never exist) vs. well-formed-but-unknown id.
        assert _json_request(service, "GET", "/debug/traces?id=nope")[0] \
            == 400
        assert _json_request(
            service, "GET", "/debug/traces?id=abc-00ffffff"
        )[0] == 404

    def test_profiled_query_still_traced(self, service):
        _, body = _json_request(service, "POST", "/query",
                                {"query": QUERY, "profile": True})
        assert "profile" in body
        assert body["trace_id"]


# --------------------------------------------------------------- sampling


class TestSampling:
    def test_sample_zero_disables_tracing(self, store):
        svc, thread = _serve(store, trace_sample=0.0)
        try:
            _, body = _json_request(svc, "POST", "/query", {"query": QUERY})
            assert "trace_id" not in body
            _, listing = _json_request(svc, "GET", "/debug/traces")
            assert listing["traces"] == []
        finally:
            svc.shutdown()
            thread.join(timeout=10)

    def test_fractional_sample_keeps_some(self, store):
        svc, thread = _serve(store, trace_sample=0.5)
        try:
            bodies = [
                _json_request(svc, "POST", "/query", {"query": QUERY})[1]
                for _ in range(4)
            ]
            traced = [b for b in bodies if "trace_id" in b]
            assert len(traced) == 2  # deterministic accumulator sampling
        finally:
            svc.shutdown()
            thread.join(timeout=10)


# ----------------------------------------------------------------- metrics


class TestHistogramsOverHTTP:
    def test_request_histogram_grows_per_request(self, service):
        before = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count
        for _ in range(3):
            _json_request(service, "POST", "/query", {"query": QUERY})
        _, snap = _json_request(service, "GET", "/metrics")
        hist = snap["histograms"]["service.server.request_ms"]
        assert hist["count"] == before + 3
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(hist)

    def test_prometheus_rendering_on_accept_header(self, service):
        _json_request(service, "POST", "/query", {"query": QUERY})
        status, raw = _request(service, "GET", "/metrics",
                               headers={"Accept": "text/plain"})
        text = raw.decode("utf-8")
        assert status == 200
        assert "# TYPE repro_service_server_request_ms histogram" in text
        assert 'repro_service_server_request_ms_bucket{le="+Inf"}' in text
        assert "repro_service_server_requests_total" in text

    def test_json_stays_the_default(self, service):
        status, body = _json_request(service, "GET", "/metrics")
        assert status == 200
        assert "histograms" in body


# -------------------------------------------------------------- structured log


class TestStructuredLogs:
    @pytest.fixture()
    def captured(self):
        stream = io.StringIO()
        obslog.set_stream(stream)
        obslog.set_level("info")
        yield stream
        obslog.set_level("warning")
        obslog.set_stream(None)

    def _lines(self, stream, event):
        return [
            json.loads(line) for line in stream.getvalue().splitlines()
            if json.loads(line)["event"] == event
        ]

    def test_access_log_line_per_request(self, service, captured):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        lines = self._lines(captured, "http_access")
        assert len(lines) == 1
        (line,) = lines
        assert line["method"] == "POST"
        assert line["path"] == "/query"
        assert line["status"] == 200
        assert line["trace_id"] == body["trace_id"]
        assert line["cache_hit"] is False
        assert line["duration_ms"] >= 0

    def test_quiet_by_default_at_warning(self, service):
        stream = io.StringIO()
        obslog.set_stream(stream)
        try:
            _json_request(service, "POST", "/query", {"query": QUERY})
            assert stream.getvalue() == ""
        finally:
            obslog.set_stream(None)

    def test_slow_query_log_carries_span_tree(self, store, captured):
        svc, thread = _serve(store, slow_ms=0.0)  # everything is "slow"
        try:
            _, body = _json_request(svc, "POST", "/query", {"query": QUERY})
            lines = self._lines(captured, "slow_query")
            assert len(lines) == 1
            (line,) = lines
            assert line["level"] == "warning"
            assert line["trace_id"] == body["trace_id"]
            assert "store.query" in _span_names(line["trace"]["root"])
        finally:
            svc.shutdown()
            thread.join(timeout=10)

    def test_error_statuses_logged_with_status(self, service, captured):
        status, _ = _json_request(service, "POST", "/query",
                                  {"query": "SELECT ?x {"})
        assert status == 400
        lines = self._lines(captured, "http_access")
        assert lines[-1]["status"] == 400

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obslog.set_level("loud")


# ------------------------------------------------------------- concurrency


class TestConcurrency:
    def test_histograms_and_traces_under_load(self, service):
        """N concurrent clients: every request gets its own trace, the
        histogram counts them all, and each span tree stays intact."""
        n = 8
        results = [None] * n
        errors = []
        before = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count

        def client(i):
            try:
                _, body = _json_request(service, "POST", "/query",
                                        {"query": QUERY})
                results[i] = body["trace_id"]
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert all(results)
        assert len(set(results)) == n  # no two requests share a trace
        after = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count
        assert after - before == n
        for trace_id in results:
            status, detail = _json_request(
                service, "GET", f"/debug/traces?id={trace_id}"
            )
            assert status == 200
            names = _span_names(detail["root"])
            assert "store.query" in names
            # Spans from other requests never leak into this tree.
            assert names.count("store.query") == 1

    def test_parallel_pool_spans_attach_to_right_trace(self, tmp_path):
        """With parallel scans on, pool workers inherit the submitting
        request's context: scan spans land under that trace only."""
        with TemporalStore(tmp_path, parallel=True) as store:
            store.load_dataset(fixture_graph())
            svc, thread = _serve(store)
            try:
                bodies = [
                    _json_request(svc, "POST", "/query",
                                  {"query": JOIN_QUERY})[1],
                ]
                # Distinct second query so the result cache cannot serve it.
                bodies.append(_json_request(svc, "POST", "/query", {
                    "query": "SELECT ?o ?b {UM president ?o ?t . "
                             "UC budget ?b ?u}",
                })[1])
                for body in bodies:
                    _, detail = _json_request(
                        svc, "GET", f"/debug/traces?id={body['trace_id']}"
                    )
                    names = _span_names(detail["root"])
                    assert names.count("scan.pattern") == 2
                    assert detail["trace_id"] == body["trace_id"]
            finally:
                svc.shutdown()
                thread.join(timeout=10)


# ----------------------------------------------------------------- disabled


class TestKillSwitchOverHTTP:
    def test_disabled_obs_serves_without_traces(self, store):
        metrics.set_enabled(False)
        try:
            svc, thread = _serve(store)
            try:
                status, body = _json_request(svc, "POST", "/query",
                                             {"query": QUERY})
                assert status == 200
                assert "trace_id" not in body
                assert body["rows"]
                _, listing = _json_request(svc, "GET", "/debug/traces")
                assert listing["traces"] == []
            finally:
                svc.shutdown()
                thread.join(timeout=10)
        finally:
            metrics.set_enabled(True)


# ------------------------------------------------------- workload endpoint


class TestWorkloadEndpoint:
    def test_debug_workload_lists_shapes(self, service):
        workload.WORKLOAD.reset()
        _json_request(service, "POST", "/query", {"query": QUERY})
        _json_request(service, "POST", "/query", {"query": QUERY})  # hit
        _json_request(service, "POST", "/query", {"query": JOIN_QUERY})
        status, snap = _json_request(service, "GET", "/debug/workload")
        assert status == 200
        assert snap["enabled"] is True
        assert snap["distinct_shapes"] == 2
        assert snap["records"] == 3
        busiest = snap["shapes"][0]
        assert busiest["count"] == 2
        assert busiest["cache_hit_ratio"] == 0.5
        assert busiest["p95_ms"] >= 0
        assert busiest["exemplar_trace_id"]
        # The exemplar resolves to a real trace.
        assert _json_request(
            service, "GET",
            f"/debug/traces?id={busiest['exemplar_trace_id']}",
        )[0] == 200

    def test_workload_respects_limit_and_bad_limit(self, service):
        workload.WORKLOAD.reset()
        _json_request(service, "POST", "/query", {"query": QUERY})
        _json_request(service, "POST", "/query", {"query": JOIN_QUERY})
        _, snap = _json_request(service, "GET", "/debug/workload?limit=1")
        assert len(snap["shapes"]) == 1
        assert _json_request(
            service, "GET", "/debug/workload?limit=abc"
        )[0] == 400

    def test_workload_disabled_under_kill_switch(self, store):
        workload.WORKLOAD.reset()
        metrics.set_enabled(False)
        try:
            svc, thread = _serve(store)
            try:
                _json_request(svc, "POST", "/query", {"query": QUERY})
                status, snap = _json_request(svc, "GET", "/debug/workload")
                assert status == 200
                assert snap["enabled"] is False
                assert snap["shapes"] == []
            finally:
                svc.shutdown()
                thread.join(timeout=10)
        finally:
            metrics.set_enabled(True)


# -------------------------------------------------------- storage endpoint


class TestStorageEndpoint:
    def test_debug_storage_reports_health(self, service):
        status, report = _json_request(service, "GET", "/debug/storage")
        assert status == 200
        assert set(report["indexes"]) == {"spo", "sop", "pos", "ops"}
        spo = report["indexes"]["spo"]
        assert spo["depth"] >= 1
        assert spo["leaves"] >= 1
        assert 0.0 < spo["live_ratio"] <= 1.0
        assert spo["compression_ratio"] > 0
        assert report["dictionary"]["terms"] > 0
        assert report["store"]["wal"]["next_lsn"] >= 1
        assert "records_since_checkpoint" in report["store"]["wal"]
        assert report["total_size_bytes"] > 0


# -------------------------------------------------------- profile endpoint


class TestProfileEndpoint:
    def test_debug_profile_collects_stacks_under_load(self, service):
        stop = threading.Event()

        def load():
            while not stop.is_set():
                _json_request(service, "POST", "/query", {"query": QUERY})

        thread = threading.Thread(target=load, daemon=True)
        thread.start()
        try:
            status, raw = _request(
                service, "GET", "/debug/profile?seconds=0.3"
            )
        finally:
            stop.set()
            thread.join(timeout=10)
        assert status == 200
        text = raw.decode("utf-8")
        assert text.strip()
        stack, count = text.splitlines()[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert ";" in stack or ":" in stack

    def test_profile_rejects_bad_seconds(self, service):
        assert _request(
            service, "GET", "/debug/profile?seconds=0"
        )[0] == 400
        assert _request(
            service, "GET", "/debug/profile?seconds=abc"
        )[0] == 400
        assert _request(
            service, "GET", "/debug/profile?seconds=9999"
        )[0] == 400

    def test_profile_disabled_under_kill_switch(self, store):
        metrics.set_enabled(False)
        try:
            svc, thread = _serve(store)
            try:
                assert _request(
                    svc, "GET", "/debug/profile?seconds=0.1"
                )[0] == 503
            finally:
                svc.shutdown()
                thread.join(timeout=10)
        finally:
            metrics.set_enabled(True)


# ------------------------------------------------------ error-path trace ids


class TestErrorTraceIds:
    def test_timeout_response_carries_trace_id(self, store):
        original = store.query

        def slow_query(text, profile=False):
            time.sleep(0.5)
            return original(text, profile)

        store.query = slow_query
        svc = serve(store, port=0, max_inflight=4, request_timeout=0.05)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _json_request(svc, "POST", "/query",
                                         {"query": QUERY})
            assert status == 504
            assert body["trace_id"]
        finally:
            store.query = original
            svc.shutdown()
            thread.join(timeout=10)

    def test_rejection_response_carries_trace_id(self, store):
        original = store.query
        entered = threading.Event()
        release = threading.Event()

        def blocking_query(text, profile=False):
            entered.set()
            release.wait(timeout=10)
            return original(text, profile)

        store.query = blocking_query
        svc = serve(store, port=0, max_inflight=1,
                    admission_timeout=0.01, request_timeout=30.0)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            hog = threading.Thread(
                target=_json_request,
                args=(svc, "POST", "/query", {"query": QUERY}),
                daemon=True,
            )
            hog.start()
            # Only probe once the hog provably holds the single slot —
            # otherwise the probe can win the race and block instead.
            assert entered.wait(timeout=5)
            status, body = _json_request(svc, "POST", "/query",
                                         {"query": QUERY})
            assert status == 503
            assert body["trace_id"]
        finally:
            release.set()
            store.query = original
            svc.shutdown()
            thread.join(timeout=10)


# -------------------------------------------------------- process metrics


class TestProcessMetrics:
    def test_healthz_reports_uptime_and_rss(self, service):
        status, body = _json_request(service, "GET", "/healthz")
        assert status == 200
        assert body["uptime_seconds"] > 0
        # rss may be None off Linux; when present it is plausible.
        if body["rss_bytes"] is not None:
            assert body["rss_bytes"] > 1024 * 1024

    def test_prometheus_has_help_and_process_gauges(self, service):
        _, raw = _request(service, "GET", "/metrics",
                          headers={"Accept": "text/plain"})
        text = raw.decode("utf-8")
        assert ("# HELP repro_service_server_requests_total "
                "HTTP requests received") in text
        assert "# TYPE repro_process_uptime_seconds gauge" in text
        assert "repro_process_uptime_seconds" in text
        assert "repro_process_rss_bytes" in text

    def test_prometheus_renders_zero_valued_catalog_series(self):
        # A fresh registry has registered nothing; every cataloged series
        # must still render (zero-valued) so scrapes are shape-stable.
        fresh = metrics.Registry()
        text = fresh.render_prometheus()
        assert "repro_service_wal_syncs_total 0" in text
        assert "# HELP repro_engine_queries_total" in text
        assert "repro_optimizer_drift_median_qerror 0" in text
        assert 'repro_service_store_query_ms_bucket{le="+Inf"} 0' in text


# ----------------------------------------------- events + cluster scope


class TestEventsAndClusterScope:
    def test_debug_events_serves_the_local_ring(self, service):
        from repro.obs import events as obs_events

        obs_events.EVENTS.record("cluster.event.resync", shard_id=9)
        status, body = _json_request(service, "GET",
                                     "/debug/events?limit=500")
        assert status == 200
        assert body["enabled"] is True
        names = [event["event"] for event in body["events"]]
        assert "cluster.event.resync" in names
        assert body["counts"]["cluster.event.resync"] >= 1
        (recorded,) = [
            event for event in body["events"]
            if event["event"] == "cluster.event.resync"
            and event.get("shard_id") == 9
        ][:1]
        assert recorded["level"] == "info"
        assert recorded["ts"] > 0

    def test_debug_events_rejects_bad_limit(self, service):
        status, _ = _json_request(service, "GET",
                                  "/debug/events?limit=soon")
        assert status == 400

    def test_metrics_cluster_scope_needs_a_coordinator(self, service):
        # A standalone TemporalStore has no federated_metrics: explicit
        # 400, not a silent fall-through to the local registry.
        status, body = _json_request(service, "GET",
                                     "/metrics?scope=cluster")
        assert status == 400
        assert "coordinator" in body["error"]
