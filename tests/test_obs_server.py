"""Serving-layer observability: trace ids, /debug/traces, histograms,
Prometheus text, structured logs, and behaviour under concurrent load."""

import http.client
import io
import json
import threading

import pytest

from repro.model import date_to_chronon
from repro.obs import log as obslog
from repro.obs import metrics
from repro.service import TemporalStore, serve

from tests.test_service_store import fixture_graph

D = date_to_chronon

QUERY = "SELECT ?o {UC president ?o ?t}"
JOIN_QUERY = "SELECT ?o ?b {UC president ?o ?t . UC budget ?b ?u}"


@pytest.fixture()
def store(tmp_path):
    # group_size=1 so every update group-commits immediately — the WAL
    # sync span shows up in each update's trace.
    with TemporalStore(tmp_path, group_size=1) as s:
        s.load_dataset(fixture_graph())
        yield s


def _serve(store, **kwargs):
    svc = serve(store, port=0, max_inflight=4, request_timeout=10.0,
                **kwargs)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    return svc, thread


@pytest.fixture()
def service(store):
    svc, thread = _serve(store)
    yield svc
    svc.shutdown()
    thread.join(timeout=10)


def _request(service, method, path, payload=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=15)
    try:
        body = json.dumps(payload) if payload is not None else None
        send_headers = dict(headers or {})
        if body:
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body, send_headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _json_request(service, method, path, payload=None, headers=None):
    status, raw = _request(service, method, path, payload, headers)
    return status, json.loads(raw)


def _span_names(node, out=None):
    if out is None:
        out = []
    out.append(node["name"])
    for child in node["children"]:
        _span_names(child, out)
    return out


# -------------------------------------------------------------- trace ids


class TestTraceIds:
    def test_query_response_carries_trace_id(self, service):
        status, body = _json_request(service, "POST", "/query",
                                     {"query": QUERY})
        assert status == 200
        assert body["trace_id"]

    def test_debug_traces_returns_the_span_tree(self, service):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        trace_id = body["trace_id"]
        status, detail = _json_request(
            service, "GET", f"/debug/traces?id={trace_id}"
        )
        assert status == 200
        assert detail["trace_id"] == trace_id
        assert detail["name"] == "POST /query"
        names = _span_names(detail["root"])
        assert "store.query" in names
        assert "admission.wait" in names
        assert "scan.pattern" in names  # the index-scan leaf
        assert detail["attrs"]["status"] == 200
        assert detail["attrs"]["cache_hit"] is False

    def test_join_query_records_join_span(self, service):
        _, body = _json_request(service, "POST", "/query",
                                {"query": JOIN_QUERY})
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={body['trace_id']}"
        )
        names = _span_names(detail["root"])
        assert names.count("scan.pattern") == 2
        assert any(n.startswith("join.") for n in names)

    def test_update_trace_has_wal_spans(self, service):
        _, body = _json_request(service, "POST", "/update", {
            "op": "insert", "subject": "UC", "predicate": "chancellor",
            "object": "Carol_Christ", "time": D("07/01/2017"),
        })
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={body['trace_id']}"
        )
        names = _span_names(detail["root"])
        assert "store.update" in names
        assert "wal.append" in names
        assert "wal.sync" in names  # group_size=1 commits per update
        assert "lock.write.wait" in names

    def test_cached_repeat_is_marked_hit(self, service):
        _json_request(service, "POST", "/query", {"query": QUERY})
        _, second = _json_request(service, "POST", "/query",
                                  {"query": QUERY})
        _, detail = _json_request(
            service, "GET", f"/debug/traces?id={second['trace_id']}"
        )
        assert detail["attrs"]["cache_hit"] is True
        names = _span_names(detail["root"])
        assert "cache.lookup" in names
        assert "scan.pattern" not in names  # served without scanning

    def test_trace_listing_and_missing_id(self, service):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        status, listing = _json_request(service, "GET", "/debug/traces")
        assert status == 200
        ids = [t["trace_id"] for t in listing["traces"]]
        assert body["trace_id"] in ids
        assert _json_request(service, "GET", "/debug/traces?id=nope")[0] \
            == 404

    def test_profiled_query_still_traced(self, service):
        _, body = _json_request(service, "POST", "/query",
                                {"query": QUERY, "profile": True})
        assert "profile" in body
        assert body["trace_id"]


# --------------------------------------------------------------- sampling


class TestSampling:
    def test_sample_zero_disables_tracing(self, store):
        svc, thread = _serve(store, trace_sample=0.0)
        try:
            _, body = _json_request(svc, "POST", "/query", {"query": QUERY})
            assert "trace_id" not in body
            _, listing = _json_request(svc, "GET", "/debug/traces")
            assert listing["traces"] == []
        finally:
            svc.shutdown()
            thread.join(timeout=10)

    def test_fractional_sample_keeps_some(self, store):
        svc, thread = _serve(store, trace_sample=0.5)
        try:
            bodies = [
                _json_request(svc, "POST", "/query", {"query": QUERY})[1]
                for _ in range(4)
            ]
            traced = [b for b in bodies if "trace_id" in b]
            assert len(traced) == 2  # deterministic accumulator sampling
        finally:
            svc.shutdown()
            thread.join(timeout=10)


# ----------------------------------------------------------------- metrics


class TestHistogramsOverHTTP:
    def test_request_histogram_grows_per_request(self, service):
        before = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count
        for _ in range(3):
            _json_request(service, "POST", "/query", {"query": QUERY})
        _, snap = _json_request(service, "GET", "/metrics")
        hist = snap["histograms"]["service.server.request_ms"]
        assert hist["count"] == before + 3
        assert {"p50_ms", "p95_ms", "p99_ms"} <= set(hist)

    def test_prometheus_rendering_on_accept_header(self, service):
        _json_request(service, "POST", "/query", {"query": QUERY})
        status, raw = _request(service, "GET", "/metrics",
                               headers={"Accept": "text/plain"})
        text = raw.decode("utf-8")
        assert status == 200
        assert "# TYPE repro_service_server_request_ms histogram" in text
        assert 'repro_service_server_request_ms_bucket{le="+Inf"}' in text
        assert "repro_service_server_requests_total" in text

    def test_json_stays_the_default(self, service):
        status, body = _json_request(service, "GET", "/metrics")
        assert status == 200
        assert "histograms" in body


# -------------------------------------------------------------- structured log


class TestStructuredLogs:
    @pytest.fixture()
    def captured(self):
        stream = io.StringIO()
        obslog.set_stream(stream)
        obslog.set_level("info")
        yield stream
        obslog.set_level("warning")
        obslog.set_stream(None)

    def _lines(self, stream, event):
        return [
            json.loads(line) for line in stream.getvalue().splitlines()
            if json.loads(line)["event"] == event
        ]

    def test_access_log_line_per_request(self, service, captured):
        _, body = _json_request(service, "POST", "/query", {"query": QUERY})
        lines = self._lines(captured, "http_access")
        assert len(lines) == 1
        (line,) = lines
        assert line["method"] == "POST"
        assert line["path"] == "/query"
        assert line["status"] == 200
        assert line["trace_id"] == body["trace_id"]
        assert line["cache_hit"] is False
        assert line["duration_ms"] >= 0

    def test_quiet_by_default_at_warning(self, service):
        stream = io.StringIO()
        obslog.set_stream(stream)
        try:
            _json_request(service, "POST", "/query", {"query": QUERY})
            assert stream.getvalue() == ""
        finally:
            obslog.set_stream(None)

    def test_slow_query_log_carries_span_tree(self, store, captured):
        svc, thread = _serve(store, slow_ms=0.0)  # everything is "slow"
        try:
            _, body = _json_request(svc, "POST", "/query", {"query": QUERY})
            lines = self._lines(captured, "slow_query")
            assert len(lines) == 1
            (line,) = lines
            assert line["level"] == "warning"
            assert line["trace_id"] == body["trace_id"]
            assert "store.query" in _span_names(line["trace"]["root"])
        finally:
            svc.shutdown()
            thread.join(timeout=10)

    def test_error_statuses_logged_with_status(self, service, captured):
        status, _ = _json_request(service, "POST", "/query",
                                  {"query": "SELECT ?x {"})
        assert status == 400
        lines = self._lines(captured, "http_access")
        assert lines[-1]["status"] == 400

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obslog.set_level("loud")


# ------------------------------------------------------------- concurrency


class TestConcurrency:
    def test_histograms_and_traces_under_load(self, service):
        """N concurrent clients: every request gets its own trace, the
        histogram counts them all, and each span tree stays intact."""
        n = 8
        results = [None] * n
        errors = []
        before = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count

        def client(i):
            try:
                _, body = _json_request(service, "POST", "/query",
                                        {"query": QUERY})
                results[i] = body["trace_id"]
            except Exception as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert all(results)
        assert len(set(results)) == n  # no two requests share a trace
        after = metrics.REGISTRY.histogram(
            "service.server.request_ms"
        ).count
        assert after - before == n
        for trace_id in results:
            status, detail = _json_request(
                service, "GET", f"/debug/traces?id={trace_id}"
            )
            assert status == 200
            names = _span_names(detail["root"])
            assert "store.query" in names
            # Spans from other requests never leak into this tree.
            assert names.count("store.query") == 1

    def test_parallel_pool_spans_attach_to_right_trace(self, tmp_path):
        """With parallel scans on, pool workers inherit the submitting
        request's context: scan spans land under that trace only."""
        with TemporalStore(tmp_path, parallel=True) as store:
            store.load_dataset(fixture_graph())
            svc, thread = _serve(store)
            try:
                bodies = [
                    _json_request(svc, "POST", "/query",
                                  {"query": JOIN_QUERY})[1],
                ]
                # Distinct second query so the result cache cannot serve it.
                bodies.append(_json_request(svc, "POST", "/query", {
                    "query": "SELECT ?o ?b {UM president ?o ?t . "
                             "UC budget ?b ?u}",
                })[1])
                for body in bodies:
                    _, detail = _json_request(
                        svc, "GET", f"/debug/traces?id={body['trace_id']}"
                    )
                    names = _span_names(detail["root"])
                    assert names.count("scan.pattern") == 2
                    assert detail["trace_id"] == body["trace_id"]
            finally:
                svc.shutdown()
                thread.join(timeout=10)


# ----------------------------------------------------------------- disabled


class TestKillSwitchOverHTTP:
    def test_disabled_obs_serves_without_traces(self, store):
        metrics.set_enabled(False)
        try:
            svc, thread = _serve(store)
            try:
                status, body = _json_request(svc, "POST", "/query",
                                             {"query": QUERY})
                assert status == 200
                assert "trace_id" not in body
                assert body["rows"]
                _, listing = _json_request(svc, "GET", "/debug/traces")
                assert listing["traces"] == []
            finally:
                svc.shutdown()
                thread.join(timeout=10)
        finally:
            metrics.set_enabled(True)
