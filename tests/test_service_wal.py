"""Write-ahead log: framing, recovery, torn-tail repair, group commit."""

import os

import pytest

from repro.service.wal import (
    WAL_MAGIC,
    WalError,
    WalRecord,
    WriteAheadLog,
    read_records,
)


def _fill(wal, n, start=0):
    for i in range(n):
        wal.append("insert", f"s{start + i}", "p", f"o{start + i}",
                   1000 + start + i)


class TestRoundTrip:
    def test_record_encode_decode(self):
        record = WalRecord(7, "delete", "Ünïcode subject", "p", "o with spaces",
                           12345)
        assert WalRecord.decode(record.encode()) == record

    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            lsns = [
                wal.append("insert", "UC", "president", "Yudof", 100),
                wal.append("delete", "UC", "president", "Yudof", 200),
            ]
        assert lsns == [1, 2]
        records = read_records(path)
        assert [(r.lsn, r.op, r.subject, r.time) for r in records] == [
            (1, "insert", "UC", 100),
            (2, "delete", "UC", 200),
        ]

    def test_reopen_continues_lsns(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            _fill(wal, 3)
        with WriteAheadLog(path) as wal:
            assert [r.lsn for r in wal.recovered] == [1, 2, 3]
            assert wal.append("insert", "x", "y", "z", 5000) == 4


class TestRecovery:
    def test_fresh_file_gets_magic(self, tmp_path):
        path = tmp_path / "w.wal"
        WriteAheadLog(path).close()
        assert path.read_bytes() == WAL_MAGIC

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.wal"
        path.write_bytes(b"NOTAWAL!" + b"x" * 100)
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            _fill(wal, 5)
        good_size = path.stat().st_size
        # Simulate a crash mid-write: append half a frame.
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x20\xde\xad")
        with WriteAheadLog(path) as wal:
            assert len(wal.recovered) == 5
        assert path.stat().st_size == good_size

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = tmp_path / "w.wal"
        with WriteAheadLog(path) as wal:
            _fill(wal, 3)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the *second* frame's payload.
        first_end = len(WAL_MAGIC) + 8 + len(
            WalRecord(1, "insert", "s0", "p", "o0", 1000).encode()
        )
        data[first_end + 12] ^= 0xFF
        path.write_bytes(bytes(data))
        with WriteAheadLog(path) as wal:
            # Only the record before the corruption survives.
            assert [r.lsn for r in wal.recovered] == [1]

    def test_truncate_resets_file_not_lsn(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        _fill(wal, 4)
        wal.truncate()
        assert read_records(path) == []
        assert wal.append("insert", "a", "b", "c", 9000) == 5
        wal.close()

    def test_start_lsn_floor(self, tmp_path):
        # After a checkpoint at LSN 10 and WAL truncation, a restart must
        # not reuse LSNs <= 10.
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path, start_lsn=11)
        assert wal.append("insert", "a", "b", "c", 1) == 11
        wal.close()


class TestGroupCommit:
    def test_sync_counts(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        wal = WriteAheadLog(tmp_path / "w.wal", group_size=3)
        synced.clear()  # header creation fsyncs once
        _fill(wal, 7)
        assert len(synced) == 2  # at records 3 and 6
        wal.sync()
        assert len(synced) == 3  # the tail of the batch
        wal.sync()
        assert len(synced) == 3  # idempotent when nothing is pending
        wal.close()

    def test_no_fsync_mode(self, tmp_path, monkeypatch):
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        wal = WriteAheadLog(tmp_path / "w.wal", group_size=1, fsync=False)
        synced.clear()
        _fill(wal, 5)
        wal.sync()
        assert synced == []
        # Records still reach the OS: readable from another handle.
        assert len(read_records(tmp_path / "w.wal")) == 5
        wal.close()

    def test_group_size_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w.wal", group_size=0)


class TestReadFrom:
    """The replication / change-feed read path (read_from / tail)."""

    def test_read_from_zero_returns_all(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        _fill(wal, 5)
        assert [r.lsn for r in wal.read_from(0)] == [1, 2, 3, 4, 5]
        wal.close()

    def test_mid_stream_offset(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        _fill(wal, 10)
        tail = wal.read_from(6)
        assert [r.lsn for r in tail] == [7, 8, 9, 10]
        assert tail[0].subject == "s6"
        # At and past the end: empty, not an error.
        assert wal.read_from(10) == []
        assert wal.read_from(999) == []
        wal.close()

    def test_sees_unflushed_appends(self, tmp_path):
        # Records acknowledged but still inside the group-commit window
        # must be visible: read_from flushes the append handle first.
        wal = WriteAheadLog(tmp_path / "w.wal", group_size=1000)
        _fill(wal, 3)
        assert [r.lsn for r in wal.read_from(0)] == [1, 2, 3]
        wal.close()

    def test_foreign_reader_on_live_file(self, tmp_path):
        # A second (read-only) handle on a WAL another process owns: the
        # common replication topology on one box.
        path = tmp_path / "w.wal"
        writer = WriteAheadLog(path)
        _fill(writer, 4)
        reader = WriteAheadLog(path, start_lsn=1)
        # Hand the reader's own (empty-position) handle a closed state so
        # only the parse path runs; read_records is the simpler API here.
        reader.close()
        assert [r.lsn for r in read_records(path)] == [1, 2, 3, 4]
        writer.close()

    def test_torn_tail_stops_read_without_repair(self, tmp_path):
        # A torn frame appearing under an *open* WAL (e.g. a reader racing
        # the writer's partial frame): read_from stops at the tear and
        # must not modify the file — repair belongs to the owning
        # recovery path, not to a read.
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        _fill(wal, 5)
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00\x00\x10\xba\xad")
        size_torn = path.stat().st_size
        assert [r.lsn for r in wal.read_from(2)] == [3, 4, 5]
        assert path.stat().st_size == size_torn  # untouched by the read
        wal.close()
        # The next owning open *does* repair it.
        wal2 = WriteAheadLog(path)
        assert path.stat().st_size < size_torn
        assert [r.lsn for r in wal2.read_from(0)] == [1, 2, 3, 4, 5]
        wal2.close()

    def test_read_from_after_truncate_sees_only_new_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        _fill(wal, 5)
        wal.truncate()
        _fill(wal, 2, start=5)
        assert [r.lsn for r in wal.read_from(0)] == [6, 7]
        # A follower that applied through 6 sees just the last record.
        assert [r.lsn for r in wal.read_from(6)] == [7]
        wal.close()

    def test_tail_iterates_then_stops(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "w.wal")
        _fill(wal, 3)
        seen = [r.lsn for r in wal.tail(1)]
        assert seen == [2, 3]
        # New appends are picked up by the *next* poll, not the old one.
        _fill(wal, 1, start=3)
        assert [r.lsn for r in wal.tail(3)] == [4]
        wal.close()

    def test_read_from_bad_magic(self, tmp_path):
        path = tmp_path / "w.wal"
        wal = WriteAheadLog(path)
        wal.close()
        path.write_bytes(b"NOTAWAL!")
        with pytest.raises(WalError):
            wal.read_from(0)
