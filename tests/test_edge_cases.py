"""Edge-case coverage: calendar restriction corners, weighted aggregates,
dataset round trips, and engine behaviour at domain boundaries."""

import pytest

from repro.engine import RDFTX
from repro.io import dumps, loads
from repro.model import (
    MIN_TIME,
    NOW,
    Period,
    PeriodSet,
    TemporalGraph,
    date_to_chronon,
)
from repro.mvsbt import CMVSBT, MVSBT
from repro.sparqlt import parse_expression
from repro.sparqlt.functions import restrict

D = date_to_chronon
HORIZON = D("2020-01-01")


class TestCalendarRestrictionCorners:
    def test_month_not_equal(self):
        periods = PeriodSet([Period(D("2013-01-10"), D("2013-03-20"))])
        got = restrict(parse_expression("MONTH(?t) != 2"), periods, HORIZON)
        # February carved out.
        assert got == PeriodSet(
            [
                Period(D("2013-01-10"), D("2013-02-01")),
                Period(D("2013-03-01"), D("2013-03-20")),
            ]
        )

    def test_month_across_year_boundary(self):
        periods = PeriodSet([Period(D("2012-11-15"), D("2013-02-15"))])
        got = restrict(parse_expression("MONTH(?t) = 1"), periods, HORIZON)
        assert got == PeriodSet([Period(D("2013-01-01"), D("2013-02-01"))])

    def test_day_comparison_range(self):
        periods = PeriodSet([Period(D("2013-05-01"), D("2013-05-10"))])
        got = restrict(parse_expression("DAY(?t) >= 8"), periods, HORIZON)
        assert got == PeriodSet([Period(D("2013-05-08"), D("2013-05-10"))])

    def test_year_of_leap_day(self):
        periods = PeriodSet([Period(D("2012-02-28"), D("2012-03-02"))])
        got = restrict(parse_expression("DAY(?t) = 29"), periods, HORIZON)
        assert got == PeriodSet([Period.point(D("2012-02-29"))])

    def test_restriction_on_empty_overlap(self):
        periods = PeriodSet([Period(D("2013-05-01"), D("2013-05-10"))])
        got = restrict(parse_expression("YEAR(?t) = 1999"), periods, HORIZON)
        assert got.is_empty


class TestWeightedAggregates:
    def test_mvsbt_fractional_weights(self):
        tree = MVSBT()
        tree.insert(10, 1, weight=0.25)
        tree.insert(20, 2, weight=1.75)
        assert tree.query(15, 5) == 0.25
        assert tree.query(25, 5) == 2.0

    def test_cmvsbt_weights_conserved(self):
        compressed = CMVSBT(cm=2, lm=2)
        total = 0.0
        for i in range(50):
            weight = 0.5 + (i % 3)
            compressed.insert(i * 3, i, weight)
            total += weight
        assert compressed.estimate(1000, 1000) == pytest.approx(total, rel=0.02)


class TestDatasetRoundTrips:
    def test_generated_dataset_survives_serialization(self):
        from repro.datasets import wikipedia

        graph = wikipedia.generate(400, seed=6).graph
        restored = loads(dumps(graph))
        engine_a = RDFTX.from_graph(graph)
        engine_b = RDFTX.from_graph(restored)
        q = "SELECT ?s ?o {?s population ?o ?t . FILTER(YEAR(?t) = 2011)}"
        assert sorted(map(repr, engine_a.query(q))) == sorted(
            map(repr, engine_b.query(q))
        )


class TestDomainBoundaries:
    def test_fact_at_epoch(self):
        g = TemporalGraph()
        g.add("a", "p", "x", MIN_TIME, 5)
        engine = RDFTX.from_graph(g)
        result = engine.query("SELECT ?o {a p ?o 1970-01-01}")
        assert result.column("o") == ["x"]

    def test_live_fact_far_future_query(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 5)
        engine = RDFTX.from_graph(g)
        result = engine.query("SELECT ?o {a p ?o 2199-12-31}")
        assert result.column("o") == ["x"]

    def test_point_query_at_interval_edges(self):
        g = TemporalGraph()
        g.add("a", "p", "x", D("2010-01-01"), D("2011-01-01"))
        engine = RDFTX.from_graph(g)
        # First day matches; the (half-open) end day does not.
        assert len(engine.query("SELECT ?o {a p ?o 2010-01-01}")) == 1
        assert len(engine.query("SELECT ?o {a p ?o 2010-12-31}")) == 1
        assert len(engine.query("SELECT ?o {a p ?o 2011-01-01}")) == 0

    def test_single_chronon_fact(self):
        g = TemporalGraph()
        g.add("a", "p", "x", 100, 101)
        engine = RDFTX.from_graph(g)
        result = engine.query("SELECT ?t {a p x ?t}")
        assert result.rows[0]["t"] == PeriodSet([Period(100, 101)])

    def test_many_values_same_chronon(self):
        """Distinct objects for one (s, p) may overlap freely in time."""
        g = TemporalGraph()
        for i in range(20):
            g.add("a", "p", f"x{i}", 50, 60)
        engine = RDFTX.from_graph(g)
        result = engine.query("SELECT ?o {a p ?o ?t}")
        assert len(result) == 20

    def test_empty_graph_engine(self):
        engine = RDFTX.from_graph(TemporalGraph())
        result = engine.query("SELECT ?s {?s ?p ?o ?t}")
        assert len(result) == 0
