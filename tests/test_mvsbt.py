"""Tests for the MVSBT/CMVSBT temporal aggregate indexes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mvsbt import CMVSBT, MVSBT


def naive_dominance(points, key, time):
    return sum(w for k, t, w in points if k <= key and t <= time)


@st.composite
def point_streams(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    points = []
    time = 0
    for _ in range(n):
        time += draw(st.integers(min_value=0, max_value=5))
        points.append((draw(st.integers(min_value=0, max_value=50)), time, 1.0))
    return points


class TestExactMVSBT:
    def test_empty(self):
        tree = MVSBT()
        assert tree.query(100, 100) == 0

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            MVSBT(node_capacity=2)

    def test_figure5_example(self):
        """Paper Figure 5: one point (30, 2)."""
        tree = MVSBT()
        tree.insert(30, 2)
        assert tree.query(10, 1) == 0
        assert tree.query(40, 5) == 1
        assert tree.query(30, 2) == 1
        assert tree.query(29, 5) == 0
        assert tree.query(40, 1) == 0

    def test_time_order_enforced(self):
        tree = MVSBT()
        tree.insert(5, 10)
        with pytest.raises(ValueError):
            tree.insert(5, 9)

    def test_weights(self):
        tree = MVSBT()
        tree.insert(5, 1, weight=2.5)
        tree.insert(7, 2, weight=0.5)
        assert tree.query(10, 10) == 3.0
        assert tree.query(6, 10) == 2.5

    @settings(max_examples=50, deadline=None)
    @given(point_streams())
    def test_matches_naive(self, points):
        tree = MVSBT(node_capacity=8)
        for k, t, w in points:
            tree.insert(k, t, w)
        tree.check_invariants()
        max_t = max((t for _, t, _ in points), default=0)
        queries = [(0, 0), (25, max_t // 2), (50, max_t), (100, max_t + 10),
                   (10, max_t), (50, 0)]
        for k, t in queries:
            assert tree.query(k, t) == naive_dominance(points, k, t)

    def test_large_random(self):
        rng = random.Random(17)
        points = []
        time = 0
        tree = MVSBT(node_capacity=16)
        for _ in range(2000):
            time += rng.randint(0, 3)
            key = rng.randint(0, 300)
            points.append((key, time, 1.0))
            tree.insert(key, time)
        tree.check_invariants()
        for _ in range(50):
            k, t = rng.randint(0, 350), rng.randint(0, time)
            assert tree.query(k, t) == naive_dominance(points, k, t)


class TestCMVSBT:
    def test_tight_at_unit_thresholds(self):
        """With cm = lm = 1 every split happens at a real point and the
        CMVSBT estimate tracks the exact MVSBT closely (the residual error
        comes only from the profile summaries created at node splits)."""
        rng = random.Random(3)
        exact = MVSBT(node_capacity=32)
        compressed = CMVSBT(cm=1, lm=1, node_capacity=32)
        points = []
        time = 0
        for _ in range(300):
            time += rng.randint(0, 3)
            key = rng.randint(0, 60)
            points.append((key, time, 1.0))
            exact.insert(key, time)
            compressed.insert(key, time)
        errors = []
        for _ in range(100):
            k, t = rng.randint(0, 70), rng.randint(0, time)
            want = naive_dominance(points, k, t)
            assert exact.query(k, t) == want
            errors.append(abs(compressed.estimate(k, t) - want))
        assert sum(errors) / len(errors) < 0.02 * len(points)
        assert max(errors) < 0.12 * len(points)

    def test_estimates_close_to_exact(self):
        """Compression keeps estimates within a reasonable relative error."""
        rng = random.Random(5)
        compressed = CMVSBT(cm=8, lm=8, node_capacity=32)
        points = []
        time = 0
        for _ in range(3000):
            time += rng.randint(0, 2)
            key = rng.randint(0, 500)
            points.append((key, time, 1.0))
            compressed.insert(key, time)
        errors = []
        for _ in range(100):
            k, t = rng.randint(100, 600), rng.randint(time // 4, time)
            want = naive_dominance(points, k, t)
            got = compressed.estimate(k, t)
            if want >= 50:
                errors.append(abs(got - want) / want)
        assert errors, "no large-answer queries sampled"
        assert sum(errors) / len(errors) < 0.15

    def test_compression_saves_entries(self):
        rng = random.Random(9)
        exact = MVSBT(node_capacity=32)
        compressed = CMVSBT(cm=16, lm=16, node_capacity=32)
        time = 0
        for _ in range(2000):
            time += rng.randint(0, 2)
            key = rng.randint(0, 300)
            exact.insert(key, time)
            compressed.insert(key, time)
        assert compressed.entry_count() < exact.entry_count() / 3

    def test_monotone_in_key_and_time(self):
        rng = random.Random(11)
        compressed = CMVSBT(cm=4, lm=4)
        time = 0
        for _ in range(500):
            time += rng.randint(0, 2)
            compressed.insert(rng.randint(0, 100), time)
        previous = 0.0
        for k in range(0, 120, 10):
            value = compressed.estimate(k, time)
            assert value >= previous - 1e-9
            previous = value

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ValueError):
            CMVSBT(cm=0)


class TestHistogramStatPair:
    def test_count_alive_matches_naive(self):
        from repro.mvsbt.histogram import _StatPair
        from repro.model.time import NOW

        rng = random.Random(23)
        records = []
        for _ in range(600):
            key = rng.randint(0, 20)
            start = rng.randint(0, 900)
            end = start + rng.randint(1, 300)
            if rng.random() < 0.2:
                end = NOW
            records.append((key, start, end))
        pair = _StatPair(cm=1, lm=1)
        for key, start, end in records:
            pair.add(key, start, end)
        pair.seal()
        errors = []
        for _ in range(60):
            k1 = rng.randint(-1, 19)
            k2 = rng.randint(k1 + 1, 21)
            t1 = rng.randint(0, 900)
            t2 = t1 + rng.randint(1, 400)
            want = sum(
                1
                for key, start, end in records
                if k1 < key <= k2 and start < t2 and end > t1
            )
            errors.append(abs(pair.count_alive(k1, k2, t1, t2) - want))
        # Windowed range counts stay tight (they are differences of four
        # dominance estimates, so errors can compound slightly).
        assert sum(errors) / len(errors) < 0.03 * len(records)
        assert max(errors) < 0.15 * len(records)
