"""Tests for the temporal N-Quads format and the CLI."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.io import FormatError, dump_graph, dumps, load_graph, loads
from repro.model import NOW, TemporalGraph, date_to_chronon

D = date_to_chronon


def sample_graph() -> TemporalGraph:
    g = TemporalGraph()
    g.add("UC", "president", "Mark Yudof", D("2008-06-16"), D("2013-09-30"))
    g.add("UC", "president", "Janet_Napolitano", D("2013-09-30"))
    g.add("UC", "motto", 'say "Fiat Lux"', D("2000-01-01"))
    g.add("odd\\term", "p", "v", 10, 20)
    return g


class TestRoundtrip:
    def test_dumps_loads(self):
        graph = sample_graph()
        restored = loads(dumps(graph))
        assert sorted(map(str, restored.triples())) == sorted(
            map(str, graph.triples())
        )

    def test_file_roundtrip(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "data.tnq"
        count = dump_graph(graph, path)
        assert count == len(graph)
        restored = load_graph(path)
        assert len(restored) == len(graph)

    def test_gzip_roundtrip(self, tmp_path):
        graph = sample_graph()
        path = tmp_path / "data.tnq.gz"
        dump_graph(graph, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"  # gzip magic
        restored = load_graph(path)
        assert len(restored) == len(graph)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(
                        blacklist_categories=("Cs", "Cc")
                    ),
                    min_size=1,
                    max_size=20,
                ),
                st.integers(0, 10000),
                st.integers(1, 5000),
            ),
            min_size=0,
            max_size=20,
        )
    )
    def test_roundtrip_property(self, rows):
        graph = TemporalGraph()
        for term, start, length in rows:
            graph.add(term, f"p_{length}", term[::-1] or "v", start,
                      start + length)
        restored = loads(dumps(graph))
        assert sorted(map(str, restored.triples())) == sorted(
            map(str, graph.triples())
        )


class TestParsing:
    def test_comments_and_blanks(self):
        text = "# a comment\n\nA p B 2010-01-01 now .\n"
        graph = loads(text)
        assert len(graph) == 1

    def test_integer_chronons(self):
        graph = loads("A p B 100 200 .\n")
        triple = next(graph.triples())
        assert triple.period.start == 100
        assert triple.period.end == 200

    def test_trailing_dot_optional(self):
        assert len(loads("A p B 100 200\n")) == 1

    def test_wrong_field_count(self):
        with pytest.raises(FormatError):
            loads("A p B 100 .\n")

    def test_bad_timestamp(self):
        with pytest.raises(FormatError) as err:
            loads("A p B someday now .\n")
        assert err.value.line_number == 1

    def test_empty_interval_rejected(self):
        with pytest.raises(FormatError):
            loads("A p B 2010-01-01 2010-01-01 .\n")

    def test_quoted_terms(self):
        graph = loads('"two words" "a \\"b\\"" "c\\\\d" 1 2 .\n')
        triple = next(graph.triples())
        assert triple.subject == "two words"
        assert triple.predicate == 'a "b"'
        assert triple.object == "c\\d"


class TestCLI:
    @pytest.fixture()
    def dataset(self, tmp_path):
        path = tmp_path / "uc.tnq"
        dump_graph(sample_graph(), path)
        return str(path)

    def test_info(self, dataset, capsys):
        assert cli.main(["info", dataset]) == 0
        out = capsys.readouterr().out
        assert "triples:        4" in out
        assert "index size:" in out

    def test_query(self, dataset, capsys):
        code = cli.main(
            ["query", dataset,
             "SELECT ?t {UC president Janet_Napolitano ?t}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[09/30/2013 ... now]" in out
        assert "1 row(s)" in out

    def test_query_explain_and_time(self, dataset, capsys):
        code = cli.main(
            ["query", dataset, "--explain", "--time",
             "SELECT ?p {UC ?p ?o ?t}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Plan:" in out
        assert "ms" in out

    def test_query_error(self, dataset, capsys):
        code = cli.main(["query", dataset, "SELECT bogus"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_generate_then_info(self, tmp_path, capsys):
        out_path = str(tmp_path / "wiki.tnq")
        assert cli.main(["generate", "wikipedia", "300", out_path]) == 0
        capsys.readouterr()
        assert cli.main(["info", out_path]) == 0
        assert "predicates:" in capsys.readouterr().out

    def test_shell_session(self, dataset, capsys, monkeypatch):
        lines = iter([
            ".help",
            "SELECT ?t {UC president Janet_Napolitano ?t};",
            ".explain",
            "SELECT ?p {UC ?p ?o ?t};",
            ".quit",
        ])
        monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
        assert cli.main(["shell", dataset]) == 0
        out = capsys.readouterr().out
        assert "[09/30/2013 ... now]" in out
        assert "explain on" in out
        assert "Plan:" in out
