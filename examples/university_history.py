"""The paper's running example: Table 2 and Examples 1-5, end to end.

Loads the University of California history exactly as printed in the paper's
Table 2 and runs each numbered example query from Section 3, printing the
results the paper describes.

Run:  python examples/university_history.py
"""

from repro import RDFTX, TemporalGraph, date_to_chronon

D = date_to_chronon


def build_table2() -> TemporalGraph:
    """Table 2: the temporal RDF triples for University of California."""
    g = TemporalGraph()
    g.add("University_of_California", "president", "Mark_Yudof",
          D("06/16/2008"), D("09/30/2013"))
    g.add("University_of_California", "president", "Janet_Napolitano",
          D("09/30/2013"))
    g.add("University_of_California", "endowment", "10.3",
          D("07/01/2013"), D("07/01/2014"))
    g.add("University_of_California", "endowment", "13.1", D("07/01/2014"))
    g.add("University_of_California", "undergraduate", "184562",
          D("05/14/2013"), D("01/30/2015"))
    g.add("University_of_California", "undergraduate", "188300",
          D("01/30/2015"))
    g.add("University_of_California", "staff", "18896",
          D("08/29/2013"), D("01/30/2015"))
    g.add("University_of_California", "staff", "19700", D("01/30/2015"))
    g.add("University_of_California", "budget", "22.7",
          D("01/30/2013"), D("01/30/2015"))
    g.add("University_of_California", "budget", "25.46", D("01/30/2015"))
    return g


EXAMPLES = [
    (
        "Example 1 — When did Janet Napolitano serve as the president",
        "SELECT ?t "
        "{University_of_California president Janet_Napolitano ?t}",
    ),
    (
        "Example 2 — The budget of University of California in 2013",
        "SELECT ?budget "
        "{University_of_California budget ?budget ?t . "
        "FILTER(YEAR(?t) = 2013) }",
    ),
    (
        "Example 3 — Presidents serving more than one year before 2011",
        "SELECT ?person ?t "
        "{ University_of_California president ?person ?t . "
        "FILTER(YEAR(?t) <= 2010 && LENGTH(?t) > 365 DAY)}",
    ),
    (
        "Example 4 — Undergraduates while Mark Yudof was in office",
        "SELECT ?university ?number ?t "
        "{?university undergraduate ?number ?t . "
        "?university president Mark_Yudof ?t . }",
    ),
    (
        "Example 5 — Who succeeded Mark Yudof",
        "SELECT ?successor "
        "{ University_of_California president Mark_Yudof ?t1 . "
        "University_of_California president ?successor ?t2 . "
        "FILTER(TEND(?t1) = TSTART(?t2)) . }",
    ),
]


def main() -> None:
    engine = RDFTX.from_graph(build_table2())
    for title, query in EXAMPLES:
        print(f"\n{title}")
        print("-" * len(title))
        print(engine.query(query).to_table())
        print("\nplan:", engine.explain(query).splitlines()[1].strip())


if __name__ == "__main__":
    main()
