"""UNION and OPTIONAL — the paper's future work, in action.

Section 3.1 of the paper plans `(P UNION P')` and `(P OPT P')` for the
future; this library implements them.  The example asks questions that need
them: "who led each university, whether titled president OR chancellor?"
and "show every university with its motto IF it has one".

Run:  python examples/union_optional.py
"""

from repro import RDFTX, TemporalGraph, date_to_chronon

D = date_to_chronon


def main() -> None:
    g = TemporalGraph()
    g.add("UC", "president", "Mark_Yudof", D("2008-06-16"), D("2013-09-30"))
    g.add("UC", "president", "Janet_Napolitano", D("2013-09-30"))
    g.add("Berkeley", "chancellor", "Robert_Birgeneau",
          D("2004-09-22"), D("2013-06-01"))
    g.add("Berkeley", "chancellor", "Nicholas_Dirks", D("2013-06-01"))
    g.add("Berkeley", "motto", "Fiat_Lux", 0)  # since the epoch
    g.add("UM", "president", "Mary_Sue_Coleman", D("2002-08-01"))
    engine = RDFTX.from_graph(g)

    print("Leaders of any title (UNION):")
    result = engine.query(
        "SELECT ?org ?leader ?t "
        "{ {?org president ?leader ?t} UNION {?org chancellor ?leader ?t} }"
    )
    print(result.to_table())

    print("\nOrganizations with their motto, if any (OPTIONAL):")
    result = engine.query(
        "SELECT ?org ?leader ?motto "
        "{ {?org president ?leader ?t} UNION {?org chancellor ?leader ?t} . "
        "OPTIONAL {?org motto ?motto ?t2}}"
    )
    print(result.to_table())

    print("\nCombined: leaders in office during 2013, motto optional:")
    result = engine.query(
        "SELECT ?org ?leader ?motto "
        "{ {?org president ?leader ?t} UNION {?org chancellor ?leader ?t} . "
        "OPTIONAL {?org motto ?motto ?t2} . FILTER(YEAR(?t) = 2013)}"
    )
    print(result.to_table())


if __name__ == "__main__":
    main()
