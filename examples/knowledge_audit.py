"""Knowledge auditing and recovery (Section 2.1's remaining scenarios).

Shows the transaction-time history doing provenance work:

* **Auditing** — find facts that were corrected quickly after being entered
  (short-lived versions are edit-war / vandalism candidates).
* **Verification** — compare a fact's stated value across time against a
  trusted snapshot date.
* **Recovery** — a value deleted by mistake is recovered from the history
  and re-asserted as live.

Run:  python examples/knowledge_audit.py
"""

from repro import RDFTX, TemporalGraph, date_to_chronon

D = date_to_chronon


def main() -> None:
    graph = TemporalGraph()
    # A curated history with one vandalism episode and one mistaken delete.
    graph.add("Rome", "population", "2873000", D("2012-01-05"), D("2014-03-01"))
    graph.add("Rome", "population", "9999999", D("2014-03-01"), D("2014-03-03"))
    graph.add("Rome", "population", "2874038", D("2014-03-03"))
    graph.add("Rome", "mayor", "Gianni_Alemanno", D("2008-04-29"), D("2013-06-12"))
    graph.add("Rome", "mayor", "Ignazio_Marino", D("2013-06-12"), D("2015-11-01"))
    # The country fact was deleted by mistake on 2015-05-01.
    graph.add("Rome", "country", "Italy", D("2001-01-01"), D("2015-05-01"))

    engine = RDFTX.from_graph(graph)

    # --- Auditing: versions that lived less than a week are suspicious.
    print("Short-lived values (possible vandalism):")
    result = engine.query(
        "SELECT ?p ?v ?t {Rome ?p ?v ?t . FILTER(LENGTH(?t) < 7 DAY)}"
    )
    print(result.to_table())

    # --- Verification: what did we claim on a trusted audit date?
    print("\nState of knowledge on 2014-03-02 (during the vandalism):")
    print(engine.query("SELECT ?p ?v {Rome ?p ?v 2014-03-02}").to_table())

    # --- Recovery: the country fact is gone today...
    today = engine.horizon
    history = engine.query("SELECT ?c ?t {Rome country ?c ?t}")
    deleted = [r for r in history if not r["t"].periods[-1].is_live]
    print("\nDeleted facts found in the history:")
    for row in deleted:
        print(f"  Rome country {row['c']}  (was valid {row['t']})")
        # ...recover it: re-assert as live from today.
        engine.insert("Rome", "country", row["c"], today)

    recovered = engine.query("SELECT ?c ?t {Rome country ?c ?t}")
    print("\nAfter recovery:")
    print(recovered.to_table())


if __name__ == "__main__":
    main()
