"""History browsing on a Wikipedia-like edit history (Section 2.1).

Generates a synthetic infobox edit history, then uses SPARQLT to browse how
entities evolved: value timelines, snapshots of the past, and the
most-edited properties — the "History Browsing and Analyzing" scenario that
motivates the paper.

Run:  python examples/wikipedia_timeline.py
"""

from repro import RDFTX
from repro.datasets import wikipedia
from repro.datasets.wikipedia import table1_statistics
from repro.model.time import format_chronon


def main() -> None:
    dataset = wikipedia.generate(6000, seed=42)
    graph = dataset.graph
    engine = RDFTX.from_graph(graph)
    print(f"Loaded {len(graph)} temporal triples, "
          f"{graph.distinct_subjects()} subjects")

    # Pick a city and walk its population timeline.
    city = next(s for s, c in dataset.category_of.items() if c == "City")
    print(f"\nPopulation timeline of {city}:")
    result = engine.query(
        f"SELECT ?population ?t {{{city} population ?population ?t}}"
    )
    for row in sorted(result, key=lambda r: r["t"].first()):
        print(f"  {row['population']:>10s}  {row['t']}")

    # Flash back: the whole infobox of that city on a past day.
    some_day = engine.query(
        f"SELECT ?t {{{city} population ?p ?t}}"
    ).rows[0]["t"].first()
    print(f"\nInfobox snapshot of {city} on {format_chronon(some_day)}:")
    snapshot = engine.query(
        f"SELECT ?property ?value "
        f"{{{city} ?property ?value {format_chronon_iso(some_day)}}}"
    )
    print(snapshot.to_table())

    # Table 1-style statistics: which properties churn the most?
    print("\nMost-updated properties (avg versions per subject):")
    stats = table1_statistics(dataset)
    top = sorted(stats.items(), key=lambda kv: kv[1], reverse=True)[:5]
    for (category, prop), mean in top:
        print(f"  {category:>10s}.{prop:<12s} {mean:5.2f}")


def format_chronon_iso(chronon: int) -> str:
    from repro.model.time import chronon_to_date

    return chronon_to_date(chronon).strftime("%Y-%m-%d")


if __name__ == "__main__":
    main()
