"""Quickstart: load a tiny history, ask SPARQLT questions.

Run:  python examples/quickstart.py
"""

from repro import RDFTX, TemporalGraph, date_to_chronon

D = date_to_chronon


def main() -> None:
    # 1. Build a temporal RDF graph: facts with validity intervals.
    graph = TemporalGraph()
    graph.add("UC", "president", "Mark_Yudof", D("2008-06-16"), D("2013-09-30"))
    graph.add("UC", "president", "Janet_Napolitano", D("2013-09-30"))
    graph.add("UC", "budget", "22.7", D("2013-01-30"), D("2015-01-30"))
    graph.add("UC", "budget", "25.46", D("2015-01-30"))

    # 2. Load it into RDF-TX: four compressed MVBT indices + dictionary.
    engine = RDFTX.from_graph(graph)

    # 3. "When" query (paper Example 1): the validity of a fact.
    result = engine.query(
        "SELECT ?t {UC president Janet_Napolitano ?t}"
    )
    print("When was Napolitano president?")
    print(result.to_table())

    # 4. Time travel (paper Example 2): a past version of a value.
    result = engine.query(
        "SELECT ?budget {UC budget ?budget ?t . FILTER(YEAR(?t) = 2013)}"
    )
    print("\nUC budget in 2013:", result.column("budget"))

    # 5. Live updates: the history keeps growing.
    engine.insert("UC", "president", "Michael_Drake", engine.horizon + 1)
    result = engine.query("SELECT ?who ?t {UC president ?who ?t}")
    print("\nFull presidency history:")
    print(result.to_table())


if __name__ == "__main__":
    main()
