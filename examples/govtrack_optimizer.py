"""Complex temporal joins with the query optimizer on GovTrack-like data.

Builds a legislative-history dataset (few predicates, coarse timestamps —
the regime where join order matters most), attaches the cost-based
optimizer, and shows plans and timings for a multi-join SPARQLT query with
and without optimization (the Figure 10(a) story in miniature).

Run:  python examples/govtrack_optimizer.py
"""

import time

from repro import Optimizer, RDFTX
from repro.datasets import govtrack


def main() -> None:
    dataset = govtrack.generate(8000, seed=7, n_periods=160)
    graph = dataset.graph
    print(f"Loaded {len(graph)} historical records")

    optimized = RDFTX.from_graph(
        graph, optimizer=Optimizer(cm=8, lm=8, budget_fraction=0.5)
    )
    unoptimized = RDFTX.from_graph(graph)

    # A star join over a congressman's event history, time-anchored.
    query = (
        "SELECT ?who ?party ?committee ?vote "
        "{?who cm_party ?party ?t . "
        " ?who cm_committee ?committee ?t . "
        " ?who cm_vote_yes ?vote ?t . "
        " ?who cm_term ?term ?t }"
    )

    print("\nOptimized plan:")
    print(optimized.explain(query))
    print("\nHeuristic plan:")
    print(unoptimized.explain(query))

    for name, engine in (("optimized", optimized), ("heuristic", unoptimized)):
        engine.query(query)  # warm
        start = time.perf_counter()
        result = engine.query(query)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"\n{name}: {len(result)} rows in {elapsed:.1f} ms")

    # The optimizer's statistics at work: estimated vs actual cardinality.
    stats = optimized.optimizer.statistics
    plan_graph, _ = optimized.compile(query)
    print("\nPattern cardinality estimates:")
    for plan in plan_graph.patterns:
        estimate = stats.pattern_cardinality(plan)
        actual = len(optimized.query(
            f"SELECT ?who ?v {{?who {plan.pattern.predicate} ?v ?t}}"
        ))
        print(f"  {str(plan.pattern):60s} est={estimate:8.1f} actual={actual}")


if __name__ == "__main__":
    main()
