"""Section 7.4: temporal histogram footprint and optimization time.

Paper: the temporal histogram (four CMVSBTs + characteristic-set schema)
takes about 8.5% of the raw data size after threshold coarsening, and query
optimization takes 3.5-10 milliseconds per complex query.
"""

from repro.bench.experiments import experiment_sec74
from repro.bench.harness import format_table, report


def test_sec74_histogram_size_and_optimize_time(figure):
    result = figure(experiment_sec74)
    table = format_table(
        "Section 7.4 — Temporal Histogram (paper: ~8.5% of raw; "
        "optimize 3.5-10ms)",
        ["Metric", "Value"],
        [
            ("Triples", result["n"]),
            ("Raw bytes", result["raw_bytes"]),
            ("Histogram bytes", result["histogram_bytes"]),
            ("Fraction of raw", round(result["fraction"], 4)),
            ("cm after coarsening", result["cm"]),
            ("Optimize min (ms)", result["optimize_ms_min"]),
            ("Optimize max (ms)", result["optimize_ms_max"]),
        ],
    )
    report("sec74_histogram", table)
    # The histogram respects the 10% budget (paper lands at 8.5%).
    assert result["fraction"] <= 0.12
    # Optimization stays in the milliseconds band.
    assert result["optimize_ms_max"] < 100
