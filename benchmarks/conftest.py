"""Shared benchmark configuration.

Run with ``pytest benchmarks/ --benchmark-only``; set ``REPRO_SCALE`` to
grow or shrink every dataset (1.0 reproduces the default shapes in minutes).
Each benchmark prints its paper-figure table and writes it to
``bench_results/``.
"""

import pytest


@pytest.fixture
def figure(benchmark):
    """Run an experiment once under pytest-benchmark and return its value."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return run
