"""CI smoke: the sharded cluster end to end, including shard failover.

Drives the real ``repro-tx serve --shards 2 --replicas 1`` process over
HTTP:

1. generate a dataset, start a 2-shard / 1-replica cluster with
   ``--data``, and wait for ``/healthz`` to report role ``coordinator``
   with every primary and replica alive,
2. run a fig9-style query mix (selection + join + complex shapes) and
   record the exact response bytes per query,
3. apply durable updates (routed to both shards) and wait until each
   replica's applied LSN catches up to its primary,
4. run one traced scatter query and assert ``/debug/traces?id=`` returns
   a single stitched span tree with worker spans from at least two
   distinct processes (shard_id/role/pid annotated, clock skew
   estimated), then scrape ``/metrics?scope=cluster`` and assert
   nonzero per-shard request counters and zero/finite replica lag,
5. SIGKILL one shard's primary worker process (no clean shutdown),
6. re-run the query mix — every response must be byte-identical to the
   pre-kill run (modulo the updates, which are re-checked explicitly) —
   and issue a write owned by the dead shard, which forces the
   coordinator to promote the replica,
7. assert ``/healthz`` shows the promoted primary (alive, new pid, the
   replica slot drained), that ``cluster.coordinator.failovers`` is
   nonzero in ``/metrics``, and that ``/debug/events`` recorded the
   failover and the promotion.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_cluster.py

Exits nonzero on any mismatch.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.join(os.path.dirname(__file__), "..")
sys.path.insert(0, os.path.join(REPO, "src"))

PORT = int(os.environ.get("SMOKE_CLUSTER_PORT", "8297"))
TRIPLES = int(os.environ.get("SMOKE_CLUSTER_TRIPLES", "1500"))


def request(method, path, payload=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body,
                     {"Content-Type": "application/json"} if body else {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def request_json(method, path, payload=None, timeout=60):
    status, raw = request(method, path, payload, timeout)
    return status, json.loads(raw)


def wait_healthy(deadline=60.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            status, body = request_json("GET", "/healthz", timeout=2)
            if status == 200:
                return body
        except OSError:
            pass
        time.sleep(0.3)
    raise SystemExit("cluster did not become healthy in time")


def wait_replicas_caught_up(deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        _, body = request_json("GET", "/healthz")
        members = body["cluster"]["members"]
        if all(
            replica["alive"]
            and replica["applied_lsn"] == member["primary"]["applied_lsn"]
            for member in members for replica in member["replicas"]
        ):
            return members
        time.sleep(0.2)
    raise SystemExit("replicas did not catch up to their primaries")


def query_bytes(mix):
    """The exact response body per query — the byte-identity fixture.

    Responses carry a per-request trace id and the revision watermark,
    both of which legitimately differ between runs (the watermark
    advances with every write); the identity contract is on the bindings
    themselves, so compare only variables + rows.
    """
    out = []
    for text in mix:
        status, raw = request("POST", "/query", {"query": text})
        if status != 200:
            raise SystemExit(f"query failed with HTTP {status}: {text}")
        body = json.loads(raw)
        out.append(json.dumps(
            {"variables": body["variables"], "rows": body["rows"]},
            sort_keys=True,
        ))
    return out


def main() -> int:
    from repro.cluster.planner import shard_of
    from repro.datasets import wikipedia
    from repro.datasets.queries import (
        complex_queries,
        join_queries,
        selection_queries,
    )
    from repro.io import dump_graph

    graph = wikipedia.generate(TRIPLES, seed=11).graph
    by_count = complex_queries(graph, seed=3)
    mix = (selection_queries(graph, 4, seed=1)
           + join_queries(graph, 3, seed=2) + by_count[3][:2])

    with tempfile.TemporaryDirectory() as tmp:
        data = os.path.join(tmp, "data.tnq")
        dump_graph(graph, data)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            os.path.join(tmp, "store"), "--data", data,
            "--shards", "2", "--replicas", "1", "--no-fsync",
            "--port", str(PORT), "--query-cache", "0",
        ]
        env = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src")}
        server = subprocess.Popen(argv, env=env)
        try:
            body = wait_healthy()
            assert body["role"] == "coordinator", body["role"]
            cluster = body["cluster"]
            assert cluster["shards"] == 2
            assert all(m["primary"]["alive"] for m in cluster["members"])
            assert all(r["alive"] for m in cluster["members"]
                       for r in m["replicas"])
            print(f"cluster up: {cluster['shards']} shards, "
                  f"{body['live_facts']} live facts")

            # updates routed to both shards, then replica catch-up
            for index in range(6):
                status, reply = request_json("POST", "/update", {
                    "op": "insert", "subject": f"smoke{index}",
                    "predicate": "smokes", "object": "yes",
                    "time": 25_000 + index,
                })
                assert status == 200, (status, reply)
            members = wait_replicas_caught_up()
            print("replicas caught up:",
                  [m["primary"]["applied_lsn"] for m in members])

            # a traced scatter query must come back as ONE stitched
            # span tree holding worker spans from >= 2 processes
            status, reply = request_json("POST", "/query", {
                "query": "SELECT ?s ?p ?o {?s ?p ?o ?t}",
            })
            assert status == 200, status
            trace_id = reply.get("trace_id")
            assert trace_id, "sampled POST should return a trace_id"
            status, detail = request_json(
                "GET", f"/debug/traces?id={trace_id}")
            assert status == 200, (status, detail)

            def walk(node, out):
                out.append(node)
                for child in node.get("children", []):
                    walk(child, out)
                return out

            spans = walk(detail["root"], [])
            worker_pids = {
                span["attrs"]["pid"] for span in spans
                if "pid" in span["attrs"] and "role" in span["attrs"]
                and "shard_id" in span["attrs"]
            }
            assert len(worker_pids) >= 2, (worker_pids, spans)
            assert server.pid not in worker_pids
            skews = [
                span["attrs"]["clock_skew_ms"] for span in spans
                if "clock_skew_ms" in span["attrs"]
            ]
            assert skews, "per-hop clock-skew annotations expected"
            print(f"stitched trace {trace_id}: worker spans from "
                  f"{sorted(worker_pids)}")

            # federated metrics: per-shard counters + finite replica lag
            status, federated = request_json(
                "GET", "/metrics?scope=cluster&force=1")
            assert status == 200, status
            shard_groups = [
                g for g in federated["groups"]
                if g["labels"].get("role") == "shard"
            ]
            assert len(shard_groups) == 2, federated["groups"]
            for group in shard_groups:
                count = group["metrics"]["counters"].get(
                    "cluster.worker.requests", 0)
                assert count > 0, group
            replica_entries = [
                m for m in federated["members"]
                if m.get("role") == "replica"
            ]
            assert len(replica_entries) == 2, federated["members"]
            for entry in replica_entries:
                assert entry["alive"], entry
                assert entry["lag_lsn"] == 0, entry
                lag_s = entry.get("lag_seconds")
                assert lag_s is None or 0.0 <= lag_s < 120.0, entry
            status, raw = request(
                "GET", "/metrics?scope=cluster&format=prometheus")
            text = raw.decode("utf-8")
            assert ('repro_cluster_worker_requests_total'
                    '{shard="0",role="shard"}') in text, text[:500]
            assert "repro_cluster_member_up{" in text
            print("federated metrics scrape ok "
                  f"({len(federated['members'])} members)")

            before = query_bytes(mix)
            print(f"query mix recorded: {len(before)} responses")

            victim_pid = members[0]["primary"]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            print(f"killed shard 0 primary (pid {victim_pid})")
            time.sleep(0.5)

            after = query_bytes(mix)
            if after != before:
                for b, a, text in zip(before, after, mix):
                    if b != a:
                        print(f"MISMATCH on {text}\n  before: {b[:200]}"
                              f"\n  after:  {a[:200]}")
                raise SystemExit("results diverged after primary death")
            print("post-kill query mix byte-identical")

            # a write owned by shard 0 forces the promotion
            subject = next(
                f"fo{i}" for i in range(10_000)
                if shard_of(f"fo{i}", 2) == 0
            )
            status, reply = request_json("POST", "/update", {
                "op": "insert", "subject": subject,
                "predicate": "promoted", "object": "yes", "time": 30_000,
            })
            assert status == 200, (status, reply)

            _, body = request_json("GET", "/healthz")
            member = body["cluster"]["members"][0]
            assert member["primary"]["alive"], member
            assert member["primary"]["pid"] != victim_pid, member
            assert member["replicas"] == [], member
            print(f"replica promoted (pid {member['primary']['pid']})")

            final = query_bytes(mix)
            if final != before:
                raise SystemExit("results diverged after promotion")
            status, raw = request("GET", "/metrics")
            failovers = json.loads(raw)["counters"].get(
                "cluster.coordinator.failovers", 0
            )
            assert failovers >= 1, failovers
            print("promoted-primary query mix byte-identical; "
                  f"failovers={failovers}")

            # the event log recorded the kill-failover promotion
            status, events_body = request_json(
                "GET", "/debug/events?limit=200")
            assert status == 200, status
            names = [e["event"] for e in events_body["events"]]
            assert "cluster.event.failover" in names, names
            assert "cluster.event.promoted" in names, names
            print(f"event log ok ({len(events_body['events'])} events, "
                  f"promotion recorded)")
        finally:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=60)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=30)
    print("cluster smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
