"""Figure 8: index space.

(a) Delta compression shrinks the MVBT to ~24% of the standard layout
    (76% saving) across dataset sizes.
(b) Across systems on Wikipedia: Jena NG far above everything (tiny named
    graphs), MySQL and Jena Reification at 3-4x raw, RDF-TX (4 compressed
    MVBTs + dictionary) around 1.8x raw and comparable to RDF-3X/Virtuoso.
"""

from repro.bench.experiments import experiment_fig8a, experiment_fig8b
from repro.bench.harness import format_table, mb, report


def test_fig8a_compression_saving(figure):
    rows = figure(experiment_fig8a)
    table = format_table(
        "Figure 8(a) — MVBT Size: standard vs compressed "
        "(paper ratio: ~0.24)",
        ["Triples", "Standard (MB)", "Compressed (MB)", "Ratio"],
        [(n, round(mb(s), 2), round(mb(c), 2), r) for n, s, c, r in rows],
    )
    report("fig8a_compression_saving", table)
    for _, standard, compressed, ratio in rows:
        assert compressed < standard
        # Paper: ~76% saving; accept the same band.
        assert 0.1 < ratio < 0.45


def test_fig8b_index_size_comparison(figure):
    result, n = figure(experiment_fig8b)
    table = format_table(
        f"Figure 8(b) — Index Size Comparison (N={n}; ratios vs raw)",
        ["System", "Bytes", "x Raw"],
        result,
    )
    report("fig8b_index_size_comparison", table)
    sizes = {name: ratio for name, _, ratio in result}
    # Shape assertions from the paper's Figure 8(b).
    assert sizes["Jena NG"] > 2 * sizes["MySQL"]
    assert sizes["MySQL"] > sizes["Compressed MVBT"]
    assert sizes["Jena Ref"] > sizes["Compressed MVBT"]
    assert sizes["Compressed MVBT"] < 4.0
