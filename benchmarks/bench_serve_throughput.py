"""Serving-layer throughput: store-level and HTTP-level, reads and writes.

Measures four configurations of the durable serving layer
(``repro.service``) over a synthetic Wikipedia-style dataset:

* **store reads** — concurrent reader threads against
  :class:`~repro.service.store.TemporalStore` (no HTTP),
* **store writes** — the single-writer update path, with and without
  per-update fsync, showing what group commit buys,
* **http reads / http writes** — the same through the
  :class:`~repro.service.server.TemporalService` endpoint, measuring the
  full JSON + admission-control + socket stack,
* **cached mix** — a single-threaded repeated-query mix (70% of requests
  round-robin over a small hot set, 30% distinct cold queries) run twice,
  with the revision-tagged result cache on and off; the summary line
  reports median per-request latency and the speedup.
* **observability overhead** — per-request HTTP latency for a read mix
  and a write mix, once with full tracing (sample rate 1.0) and once
  with the ``REPRO_OBS`` kill switch engaged; median/p95/p99 land in the
  machine-readable ``bench_results/BENCH_obs.json``.
* **cluster scaling** — concurrent read throughput against
  :class:`~repro.cluster.ClusterStore` at 1, 2 and 4 shards versus the
  single-process store, result caches disabled on both sides so the
  numbers measure scan parallelism rather than cache hits; lands in
  ``bench_results/BENCH_cluster.json``.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py

Writes an aligned table to ``bench_results/serve_throughput.txt`` via the
shared bench harness.  ``REPRO_SCALE`` scales the dataset and operation
counts down for smoke runs.
"""

from __future__ import annotations

import http.client
import json
import os
import statistics
import sys
import tempfile
import threading
import time

# Allow running from the repo root without an installed package.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import (  # noqa: E402
    RESULTS_DIR,
    format_table,
    report,
    scaled,
)
from repro.datasets import wikipedia  # noqa: E402
from repro.datasets.queries import selection_queries  # noqa: E402
from repro.model.time import NOW  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.service import TemporalStore, serve  # noqa: E402

TRIPLES = scaled(int(os.environ.get("SERVE_BENCH_TRIPLES", "20000")))
READS = scaled(int(os.environ.get("SERVE_BENCH_READS", "2000")))
WRITES = scaled(int(os.environ.get("SERVE_BENCH_WRITES", "2000")))
READERS = int(os.environ.get("SERVE_BENCH_READERS", "4"))
MIX_REQUESTS = scaled(int(os.environ.get("SERVE_BENCH_MIX", "600")))
OBS_REQUESTS = scaled(int(os.environ.get("SERVE_BENCH_OBS", "400")))
CLUSTER_READS = scaled(int(os.environ.get("SERVE_BENCH_CLUSTER", "800")))
CLUSTER_READERS = int(os.environ.get("SERVE_BENCH_CLUSTER_READERS", "8"))
CLUSTER_SHARD_COUNTS = (1, 2, 4)
HOT_PER_TEN = 7  # 70% of mix requests repeat the hot query set


def _build_store(directory, **kwargs):
    graph = wikipedia.generate(TRIPLES, seed=7).graph
    store = TemporalStore(directory, **kwargs)
    store.load_dataset(graph)
    queries = selection_queries(graph, count=8)
    return store, queries


def _update_stream(store, n):
    base = store.engine.horizon + 1
    # Clamp far away from NOW so long streams stay valid.
    assert base + 2 * n < NOW
    for i in range(n):
        yield ("bench_subject_%d" % i, "bench_member", "Org", base + 2 * i)


def bench_store_reads(store, queries) -> tuple[float, int]:
    """READS queries spread over READERS threads; returns (secs, ops)."""
    per_thread = READS // READERS
    barrier = threading.Barrier(READERS + 1)
    done = threading.Barrier(READERS + 1)

    def reader(offset):
        barrier.wait()
        for i in range(per_thread):
            store.query(queries[(offset + i) % len(queries)])
        done.wait()

    threads = [
        threading.Thread(target=reader, args=(k,)) for k in range(READERS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join()
    return elapsed, per_thread * READERS


def _mixed_requests(graph, hot_queries) -> list[str]:
    """MIX_REQUESTS queries: HOT_PER_TEN of every 10 round-robin over the
    hot set, the rest drawn from a pool of distinct cold queries (each a
    guaranteed cache miss)."""
    from repro.service.cache import normalize_query

    cold_needed = sum(
        1 for i in range(MIX_REQUESTS) if i % 10 >= HOT_PER_TEN
    )
    seen = {normalize_query(q) for q in hot_queries}
    cold: list[str] = []
    seed = 101
    while len(cold) < cold_needed:
        for q in selection_queries(graph, count=50, seed=seed):
            key = normalize_query(q)
            if key not in seen:
                seen.add(key)
                cold.append(q)
        seed += 1
    cold_iter = iter(cold)
    return [
        hot_queries[i % len(hot_queries)]
        if i % 10 < HOT_PER_TEN
        else next(cold_iter)
        for i in range(MIX_REQUESTS)
    ]


def bench_cached_mix(store, requests) -> tuple[float, int, float]:
    """Single-threaded latency run; returns (secs, ops, median secs)."""
    latencies = []
    for text in requests:
        start = time.perf_counter()
        store.query(text)
        latencies.append(time.perf_counter() - start)
    return sum(latencies), len(latencies), statistics.median(latencies)


def bench_store_writes(store) -> tuple[float, int]:
    start = time.perf_counter()
    for s, p, o, t in _update_stream(store, WRITES):
        store.insert(s, p, o, t)
    store.sync()
    return time.perf_counter() - start, WRITES


def bench_http_reads(service, queries) -> tuple[float, int]:
    per_thread = READS // READERS
    barrier = threading.Barrier(READERS + 1)
    done = threading.Barrier(READERS + 1)

    def reader(offset):
        conn = http.client.HTTPConnection("127.0.0.1", service.port,
                                          timeout=60)
        barrier.wait()
        for i in range(per_thread):
            body = json.dumps(
                {"query": queries[(offset + i) % len(queries)]}
            )
            conn.request("POST", "/query", body,
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            assert response.status == 200, response.status
        conn.close()
        done.wait()

    threads = [
        threading.Thread(target=reader, args=(k,)) for k in range(READERS)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join()
    return elapsed, per_thread * READERS


def bench_http_writes(service, store) -> tuple[float, int]:
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
    updates = [
        {"op": "insert", "subject": s, "predicate": p, "object": o,
         "time": t}
        for s, p, o, t in _update_stream(store, WRITES)
    ]
    start = time.perf_counter()
    for update in updates:
        conn.request("POST", "/update", json.dumps(update),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        response.read()
        assert response.status == 200, response.status
    conn.close()
    return time.perf_counter() - start, WRITES


def _percentile(ordered: list[float], q: float) -> float:
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _latency_summary(latencies_ms: list[float]) -> dict:
    ordered = sorted(latencies_ms)
    return {
        "requests": len(ordered),
        "median_ms": round(_percentile(ordered, 0.5), 4),
        "p95_ms": round(_percentile(ordered, 0.95), 4),
        "p99_ms": round(_percentile(ordered, 0.99), 4),
    }


def _timed_http_requests(service, payloads) -> list[float]:
    """Single-connection POSTs; returns per-request latency in ms."""
    conn = http.client.HTTPConnection("127.0.0.1", service.port, timeout=60)
    latencies = []
    for path, payload in payloads:
        body = json.dumps(payload)
        start = time.perf_counter()
        conn.request("POST", path, body,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        response.read()
        latencies.append((time.perf_counter() - start) * 1000.0)
        assert response.status == 200, response.status
    conn.close()
    return latencies


def bench_obs_latency() -> dict:
    """Per-request latency with tracing on vs the kill switch engaged.

    Each mode gets its own fresh store + in-process server so the two
    runs see identical state; ``set_enabled`` toggles the same switch the
    ``REPRO_OBS`` environment variable controls.
    """
    was_enabled = obs_metrics.ENABLED
    modes = {}
    try:
        for mode, enabled in (("tracing_on", True), ("tracing_off", False)):
            obs_metrics.set_enabled(enabled)
            per_mix = {}
            with tempfile.TemporaryDirectory() as tmp:
                store, queries = _build_store(os.path.join(tmp, "obs"),
                                              group_size=64)
                with store:
                    service = serve(store, port=0, max_inflight=4,
                                    request_timeout=120.0, trace_sample=1.0)
                    thread = threading.Thread(
                        target=service.serve_forever, daemon=True
                    )
                    thread.start()
                    try:
                        reads = [
                            ("/query", {"query": queries[i % len(queries)]})
                            for i in range(OBS_REQUESTS)
                        ]
                        per_mix["http_reads"] = _latency_summary(
                            _timed_http_requests(service, reads)
                        )
                        writes = [
                            ("/update", {"op": "insert", "subject": s,
                                         "predicate": p, "object": o,
                                         "time": t})
                            for s, p, o, t in _update_stream(
                                store, OBS_REQUESTS
                            )
                        ]
                        per_mix["http_writes"] = _latency_summary(
                            _timed_http_requests(service, writes)
                        )
                    finally:
                        service.shutdown()
                        thread.join(timeout=30)
            modes[mode] = per_mix
    finally:
        obs_metrics.set_enabled(was_enabled)

    payload = {
        "triples": TRIPLES,
        "requests_per_mix": OBS_REQUESTS,
        "mixes": {},
    }
    for mix in ("http_reads", "http_writes"):
        on = modes["tracing_on"][mix]
        off = modes["tracing_off"][mix]
        ratio = (on["median_ms"] / off["median_ms"]
                 if off["median_ms"] else float("inf"))
        payload["mixes"][mix] = {
            "tracing_on": on,
            "tracing_off": off,
            "overhead_ratio_median": round(ratio, 4),
        }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return payload


def _concurrent_reads(store, queries, reads, readers) -> tuple[float, int]:
    """``reads`` queries over ``readers`` threads against any store."""
    per_thread = reads // readers
    barrier = threading.Barrier(readers + 1)
    done = threading.Barrier(readers + 1)

    def reader(offset):
        barrier.wait()
        for i in range(per_thread):
            store.query(queries[(offset + i) % len(queries)])
        done.wait()

    threads = [
        threading.Thread(target=reader, args=(k,)) for k in range(readers)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - start
    for t in threads:
        t.join()
    return elapsed, per_thread * readers


def bench_cluster_scaling() -> tuple[dict, list]:
    """Read throughput: single-process baseline vs 1/2/4-shard clusters.

    Result caches are off on every side — a cache-hit bench would only
    measure the coordinator's socket hop.  The single process serializes
    query evaluation on the GIL, so shard processes are where the added
    throughput comes from; replicas are omitted to keep the comparison
    about sharding alone.
    """
    from repro.cluster import ClusterStore

    graph = wikipedia.generate(TRIPLES, seed=7).graph
    # Unbound-subject selections: these scatter to every shard, the
    # shape sharding is supposed to speed up.
    queries = [
        q for q in selection_queries(graph, count=16) if "{?s " in q
    ] or selection_queries(graph, count=8)
    rows = []
    payload = {
        "triples": TRIPLES,
        "reads": CLUSTER_READS,
        "readers": CLUSTER_READERS,
        # Shard scaling is process parallelism: with fewer cores than
        # shards the workers time-slice one CPU and the coordinator hop
        # is pure overhead.  Recorded so results are interpretable.
        "cpus": os.cpu_count(),
        "topologies": {},
    }

    with tempfile.TemporaryDirectory() as tmp:
        store = TemporalStore(os.path.join(tmp, "base"),
                              query_cache_size=None)
        with store:
            store.load_dataset(graph)
            elapsed, ops = _concurrent_reads(
                store, queries, CLUSTER_READS, CLUSTER_READERS
            )
        baseline = ops / elapsed if elapsed else float("inf")
        payload["topologies"]["single_process"] = {
            "ops": ops, "seconds": round(elapsed, 4),
            "ops_per_sec": round(baseline, 2),
        }
        rows.append(("cluster baseline (1 process)", ops, elapsed))

    for shards in CLUSTER_SHARD_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            with ClusterStore(os.path.join(tmp, "clu"), shards=shards,
                              fsync=False,
                              query_cache_size=None) as cluster:
                cluster.load_dataset(graph)
                elapsed, ops = _concurrent_reads(
                    cluster, queries, CLUSTER_READS, CLUSTER_READERS
                )
        rate = ops / elapsed if elapsed else float("inf")
        payload["topologies"]["shards_%d" % shards] = {
            "ops": ops, "seconds": round(elapsed, 4),
            "ops_per_sec": round(rate, 2),
            "speedup_vs_single_process": round(
                rate / baseline if baseline else float("inf"), 3
            ),
        }
        rows.append(("cluster reads (%d shards)" % shards, ops, elapsed))

    payload["speedup_4_shards"] = payload["topologies"].get(
        "shards_4", {}
    ).get("speedup_vs_single_process")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_cluster.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    return payload, rows


def main() -> int:
    rows = []

    with tempfile.TemporaryDirectory() as tmp:
        store, queries = _build_store(
            os.path.join(tmp, "reads"), group_size=64
        )
        with store:
            elapsed, ops = bench_store_reads(store, queries)
            rows.append(("store reads (%d threads)" % READERS, ops, elapsed))

    medians = {}
    for label, kwargs in (
        ("cached mix (70% repeat, cache on)", {}),
        ("cached mix (70% repeat, cache off)", {"query_cache_size": 0}),
    ):
        with tempfile.TemporaryDirectory() as tmp:
            store, queries = _build_store(
                os.path.join(tmp, "mix"), group_size=64, **kwargs
            )
            with store:
                requests = _mixed_requests(store.engine._graph, queries)
                elapsed, ops, median = bench_cached_mix(store, requests)
                medians[label] = median
                rows.append((label, ops, elapsed))

    for label, kwargs in (
        ("store writes (group=64)", {"group_size": 64}),
        ("store writes (fsync each)", {"group_size": 1}),
        ("store writes (no fsync)", {"group_size": 1, "fsync": False}),
    ):
        with tempfile.TemporaryDirectory() as tmp:
            store, _ = _build_store(os.path.join(tmp, "writes"), **kwargs)
            with store:
                elapsed, ops = bench_store_writes(store)
                rows.append((label, ops, elapsed))

    with tempfile.TemporaryDirectory() as tmp:
        store, queries = _build_store(os.path.join(tmp, "http"),
                                      group_size=64)
        with store:
            service = serve(store, port=0, max_inflight=READERS + 2,
                            request_timeout=120.0)
            thread = threading.Thread(target=service.serve_forever,
                                      daemon=True)
            thread.start()
            try:
                elapsed, ops = bench_http_reads(service, queries)
                rows.append(
                    ("http reads (%d conns)" % READERS, ops, elapsed)
                )
                elapsed, ops = bench_http_writes(service, store)
                rows.append(("http writes (1 conn)", ops, elapsed))
            finally:
                service.shutdown()
                thread.join(timeout=30)

    table = format_table(
        "Serving-layer throughput (%d triples loaded)" % TRIPLES,
        ["configuration", "ops", "seconds", "ops/sec"],
        [
            (label, ops, "%.3f" % elapsed,
             "%.0f" % (ops / elapsed if elapsed else float("inf")))
            for label, ops, elapsed in rows
        ],
    )
    on = medians["cached mix (70% repeat, cache on)"]
    off = medians["cached mix (70% repeat, cache off)"]
    summary = (
        "cached-mix median latency: on=%.6fs  off=%.6fs  speedup=%.1fx"
        % (on, off, off / on if on else float("inf"))
    )

    cluster_payload, cluster_rows = bench_cluster_scaling()
    rows.extend(cluster_rows)

    obs = bench_obs_latency()
    obs_lines = []
    for mix, data in obs["mixes"].items():
        obs_lines.append(
            "obs overhead %s: tracing on median=%.3fms  off median=%.3fms"
            "  ratio=%.2fx (p95 on/off=%.3f/%.3fms)" % (
                mix, data["tracing_on"]["median_ms"],
                data["tracing_off"]["median_ms"],
                data["overhead_ratio_median"],
                data["tracing_on"]["p95_ms"],
                data["tracing_off"]["p95_ms"],
            )
        )
    cluster_line = (
        "cluster scaling: 4-shard speedup vs single process = %sx"
        % cluster_payload.get("speedup_4_shards")
    )
    report("serve_throughput",
           table + "\n" + summary + "\n" + cluster_line + "\n"
           + "\n".join(obs_lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
