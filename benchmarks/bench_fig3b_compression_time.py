"""Figure 3(b): time to delta-compress MVBT leaf entries vs dataset size.

Paper: compression is cheap and roughly linear — 1.36s at 5M triples up to
7.25s at 30M.  The shape to reproduce: near-linear growth, small absolute
cost relative to index construction (Figure 10(b)).
"""

from repro.bench.experiments import experiment_fig3b
from repro.bench.harness import format_table, report


def test_fig3b_compression_time(figure):
    rows = figure(experiment_fig3b)
    table = format_table(
        "Figure 3(b) — Compression Time (paper: 1.36s@5M ... 7.25s@30M)",
        ["Triples", "Seconds"],
        rows,
    )
    report("fig3b_compression_time", table)
    # Near-linear: time per triple stays within a factor of ~4 end to end.
    per_triple = [seconds / n for n, seconds in rows]
    assert max(per_triple) < 4.5 * min(per_triple)
    # Compression is much cheaper than construction (paper: seconds versus
    # hundreds of seconds at 30M).
    assert rows[-1][1] < 60
