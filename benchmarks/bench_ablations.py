"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of each design
decision the paper argues for:

* **Compression ablation** — query time on compressed vs uncompressed MVBT
  (the paper includes decompression in query time and argues it is cheap).
* **Optimizer ablation** — complex-query time with the cost-based DP
  optimizer vs the constants-first heuristic (the Figure 10(a) story,
  measured end to end).
* **Backward-link pruning ablation** — the two-sided key-region pruning of
  the link-based scan vs visiting every lineage predecessor.
"""

from repro.bench.experiments import BENCH_CONFIG, _wiki
from repro.bench.harness import format_table, report, scaled, time_queries
from repro.datasets.queries import complex_queries, selection_queries
from repro.engine import RDFTX
from repro.optimizer import Optimizer
from repro.sparqlt import parse


def _ablation_compression():
    n = scaled(12000)
    graph = _wiki(n).graph
    queries = [parse(t) for t in selection_queries(graph, count=10)]
    compressed = RDFTX.from_graph(graph, config=BENCH_CONFIG, compress=True)
    plain = RDFTX.from_graph(graph, config=BENCH_CONFIG, compress=False)
    rows = [
        ("compressed", compressed.sizeof(),
         round(time_queries(compressed, queries), 3)),
        ("uncompressed", plain.sizeof(),
         round(time_queries(plain, queries), 3)),
    ]
    return rows, n


def test_ablation_compression(figure):
    rows, n = figure(_ablation_compression)
    table = format_table(
        f"Ablation — leaf compression (N={n}; selections, ms/query)",
        ["Index", "Bytes", "ms/query"],
        rows,
    )
    report("ablation_compression", table)
    compressed, uncompressed = rows
    # The space saving is large...
    assert compressed[1] < 0.5 * uncompressed[1]
    # ...and the query-time overhead stays small (decode memoization keeps
    # the paper's "decompression is cheap" property).
    assert compressed[2] < uncompressed[2] * 2.0


def _ablation_optimizer():
    n = scaled(12000)
    graph = _wiki(n).graph
    workload = complex_queries(graph, seeds=5, max_patterns=7)
    optimized = RDFTX.from_graph(
        graph, config=BENCH_CONFIG,
        optimizer=Optimizer(cm=8, lm=8, budget_fraction=0.5),
    )
    heuristic = RDFTX.from_graph(graph, config=BENCH_CONFIG)
    rows = []
    for size in sorted(workload):
        queries = [parse(t) for t in workload[size]]
        rows.append(
            (
                size,
                round(time_queries(optimized, queries), 3),
                round(time_queries(heuristic, queries), 3),
            )
        )
    return rows, n


def test_ablation_optimizer(figure):
    rows, n = figure(_ablation_optimizer)
    table = format_table(
        f"Ablation — DP optimizer vs constants-first heuristic "
        f"(N={n}, ms/query)",
        ["Patterns", "Optimizer", "Heuristic"],
        rows,
    )
    report("ablation_optimizer", table)
    # The optimizer must never be catastrophically worse, and should win
    # in aggregate on the larger pattern counts where order matters most.
    total_opt = sum(r[1] for r in rows[2:])
    total_heu = sum(r[2] for r in rows[2:])
    assert total_opt <= total_heu * 1.25


def _ablation_scan_pruning():
    import time as _time

    from repro.mvbt.scan import scan_pieces

    n = scaled(12000)
    graph = _wiki(n).graph
    engine = RDFTX.from_graph(graph, config=BENCH_CONFIG)
    tree = engine.indexes["pos"]
    pid = graph.dictionary.lookup("club")
    key_low, key_high = (pid,), (pid, 2**62)

    # Warm the decode caches so both variants measure pure traversal.
    scan_pieces(tree, key_low, key_high)

    def timed(disable_pruning: bool) -> tuple[float, int]:
        if disable_pruning:
            saved = {}
            for node in tree.iter_nodes():
                saved[id(node)] = node.key_high
                node.key_high = None
        scan_pieces(tree, key_low, key_high)  # warm this variant's leaves
        start = _time.perf_counter()
        total = 0
        for _ in range(5):
            total = len(scan_pieces(tree, key_low, key_high))
        elapsed = (_time.perf_counter() - start) / 5 * 1000
        if disable_pruning:
            for node in tree.iter_nodes():
                node.key_high = saved[id(node)]
        return elapsed, total

    with_pruning, rows_a = timed(False)
    without, rows_b = timed(True)
    assert rows_a == rows_b, "pruning must not change results"
    return [
        ("two-sided key pruning", round(with_pruning, 3), rows_a),
        ("lower-bound only", round(without, 3), rows_b),
    ], n


def test_ablation_scan_pruning(figure):
    rows, n = figure(_ablation_scan_pruning)
    table = format_table(
        f"Ablation — backward-link key pruning (N={n}; P-scan, ms)",
        ["Scan", "ms", "pieces"],
        rows,
    )
    report("ablation_scan_pruning", table)
    pruned, unpruned = rows
    assert pruned[2] == unpruned[2]
    # Pruning never hurts; on predicate scans it should help.
    assert pruned[1] <= unpruned[1] * 1.15
