"""CI smoke: the serve lifecycle end to end, including crash recovery.

Drives the real ``repro-tx serve`` process over HTTP:

1. generate a dataset and start a server with ``--data``,
2. run queries and durable updates against it, including a repeated-query
   mix that must show nonzero ``service.cache.hits`` in ``/metrics``,
3. checkpoint, apply more updates, then SIGKILL the process (no clean
   shutdown),
4. restart the server (with ``--parallel``) on the same directory and
   verify every acknowledged update survived — both the checkpointed ones
   and the WAL-only tail.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_server.py

Exits nonzero on any mismatch.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO = os.path.join(os.path.dirname(__file__), "..")
sys.path.insert(0, os.path.join(REPO, "src"))

PORT = int(os.environ.get("SMOKE_SERVER_PORT", "8199"))
TRIPLES = int(os.environ.get("SMOKE_SERVER_TRIPLES", "2000"))


def request(method, path, payload=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body,
                     {"Content-Type": "application/json"} if body else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def wait_healthy(deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            status, body = request("GET", "/healthz", timeout=2)
            if status == 200:
                return body
        except OSError:
            pass
        time.sleep(0.2)
    raise SystemExit("server did not become healthy in time")


def start_server(directory, data=None, extra=()):
    argv = [
        sys.executable, "-m", "repro.cli", "serve", directory,
        "--port", str(PORT), "--group-commit", "8", *extra,
    ]
    if data:
        argv += ["--data", data]
    env = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src")}
    return subprocess.Popen(argv, env=env)


def check(name, condition, detail=""):
    if not condition:
        raise SystemExit(f"FAIL {name}: {detail}")
    print(f"ok {name}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        dataset = os.path.join(tmp, "data.tnq")
        storedir = os.path.join(tmp, "store")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "wikipedia",
             str(TRIPLES), dataset],
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            check=True,
        )

        server = start_server(storedir, data=dataset)
        try:
            health = wait_healthy()
            check("bootstrap", health["live_facts"] > 0, health)

            status, result = request("POST", "/query", {
                "query": "SELECT ?s ?o {?s population ?o ?t}",
            })
            check("query", status == 200 and "rows" in result,
                  (status, result))

            status, body = request("POST", "/update", {
                "op": "insert", "subject": "SmokeCity",
                "predicate": "population", "object": "12345",
                "time": "2030-01-01",
            })
            check("update", status == 200 and body["applied"] == 1,
                  (status, body))
            pre_checkpoint_revision = body["revision"]

            status, body = request("POST", "/checkpoint")
            check("checkpoint",
                  status == 200
                  and body["revision"] == pre_checkpoint_revision,
                  (status, body))

            # WAL-only tail: updates after the checkpoint.
            for i in range(20):
                status, body = request("POST", "/update", {
                    "op": "insert", "subject": f"SmokeCity_{i}",
                    "predicate": "population", "object": str(i),
                    "time": "2030-01-02",
                })
                check(f"tail update {i}", status == 200, (status, body))
            final_revision = body["revision"]

            status, body = request("GET", "/metrics")
            check("metrics", status == 200 and "counters" in body, status)

            # Cached read path: repeating one query must serve from the
            # revision-tagged result cache after the first execution.
            for i in range(6):
                status, _ = request("POST", "/query", {
                    "query": "SELECT ?s ?o {?s population ?o ?t}",
                })
                check(f"cached mix query {i}", status == 200, status)
            status, body = request("GET", "/metrics")
            hits = body["counters"].get("service.cache.hits", 0)
            check("cache hits nonzero", hits > 0,
                  {k: v for k, v in body["counters"].items()
                   if k.startswith("service.")})

            os.kill(server.pid, signal.SIGKILL)  # crash, no shutdown
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)

        # Restart with parallel scanning on: recovery answers must be
        # identical regardless of the scan dispatch mode.
        server = start_server(storedir, extra=("--parallel",))
        try:
            health = wait_healthy()
            check("recovered revision",
                  health["revision"] == final_revision,
                  (health["revision"], final_revision))

            status, result = request("POST", "/query", {
                "query": "SELECT ?o {SmokeCity population ?o ?t}",
            })
            check("checkpointed update survived",
                  [r["o"] for r in result["rows"]] == ["12345"], result)

            status, result = request("POST", "/query", {
                "query": "SELECT ?s {?s population ?o ?t "
                         ". FILTER(YEAR(?t) = 2030)}",
            })
            survivors = {row["s"] for row in result["rows"]}
            expected = {"SmokeCity"} | {f"SmokeCity_{i}" for i in range(20)}
            check("WAL tail survived", survivors >= expected,
                  expected - survivors)

            status, body = request("POST", "/update", {
                "op": "delete", "subject": "SmokeCity",
                "predicate": "population", "object": "12345",
                "time": "2031-01-01",
            })
            check("post-recovery update",
                  status == 200 and body["revision"] == final_revision + 1,
                  (status, body))
        finally:
            server.send_signal(signal.SIGINT)
            try:
                server.wait(timeout=30)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=30)

    print("OK: serve lifecycle + crash recovery")
    return 0


if __name__ == "__main__":
    sys.exit(main())
