"""CI smoke: the serve lifecycle end to end, including crash recovery.

Drives the real ``repro-tx serve`` process over HTTP:

1. generate a dataset and start a server with ``--data``,
2. run queries and durable updates against it, including a repeated-query
   mix that must show nonzero ``service.cache.hits`` in ``/metrics``;
   query responses must carry a trace id that ``/debug/traces`` can
   resolve to the request's span tree; after the mix, ``/debug/workload``
   must list per-shape aggregates (count, p95, cache-hit ratio, exemplar
   trace id) and ``/debug/storage`` a structural health report,
3. checkpoint, apply more updates, then SIGKILL the process (no clean
   shutdown),
4. restart the server (with ``--parallel``) on the same directory and
   verify every acknowledged update survived — both the checkpointed ones
   and the WAL-only tail; ``/debug/profile`` must return non-empty
   collapsed stacks while a query loop runs,
5. restart once more with ``REPRO_OBS=0``: tracing must vanish from
   responses, the workload registry must stay empty, the profiler must
   refuse (503), and the obs-on median latency must stay within
   ``SMOKE_OBS_RATIO`` (default 1.5×) of the kill-switch run.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_server.py

Exits nonzero on any mismatch.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.join(os.path.dirname(__file__), "..")
sys.path.insert(0, os.path.join(REPO, "src"))

PORT = int(os.environ.get("SMOKE_SERVER_PORT", "8199"))
TRIPLES = int(os.environ.get("SMOKE_SERVER_TRIPLES", "2000"))
# Lenient by default: CI machines are noisy and the latencies are small.
OBS_RATIO = float(os.environ.get("SMOKE_OBS_RATIO", "1.5"))
OBS_SAMPLES = int(os.environ.get("SMOKE_OBS_SAMPLES", "60"))


def request(method, path, payload=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body,
                     {"Content-Type": "application/json"} if body else {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def request_text(method, path, timeout=60):
    """Like :func:`request`, but returning the raw body undecoded —
    for text endpoints such as ``/debug/profile``."""
    conn = http.client.HTTPConnection("127.0.0.1", PORT, timeout=timeout)
    try:
        conn.request(method, path, None, {})
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def wait_healthy(deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        try:
            status, body = request("GET", "/healthz", timeout=2)
            if status == 200:
                return body
        except OSError:
            pass
        time.sleep(0.2)
    raise SystemExit("server did not become healthy in time")


def start_server(directory, data=None, extra=(), env_extra=None):
    argv = [
        sys.executable, "-m", "repro.cli", "serve", directory,
        "--port", str(PORT), "--group-commit", "8", *extra,
    ]
    if data:
        argv += ["--data", data]
    env = {**os.environ, "PYTHONPATH": os.path.join(REPO, "src"),
           **(env_extra or {})}
    return subprocess.Popen(argv, env=env)


def stop_server(server):
    server.send_signal(signal.SIGINT)
    try:
        server.wait(timeout=30)
    except subprocess.TimeoutExpired:
        server.kill()
        server.wait(timeout=30)


def median_latency(query, samples=OBS_SAMPLES):
    latencies = []
    for _ in range(samples):
        start = time.perf_counter()
        status, _ = request("POST", "/query", {"query": query})
        if status != 200:
            raise SystemExit(f"latency probe got HTTP {status}")
        latencies.append(time.perf_counter() - start)
    latencies.sort()
    return latencies[len(latencies) // 2]


def check(name, condition, detail=""):
    if not condition:
        raise SystemExit(f"FAIL {name}: {detail}")
    print(f"ok {name}")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        dataset = os.path.join(tmp, "data.tnq")
        storedir = os.path.join(tmp, "store")
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "generate", "wikipedia",
             str(TRIPLES), dataset],
            env={**os.environ, "PYTHONPATH": os.path.join(REPO, "src")},
            check=True,
        )

        server = start_server(storedir, data=dataset)
        try:
            health = wait_healthy()
            check("bootstrap", health["live_facts"] > 0, health)

            status, result = request("POST", "/query", {
                "query": "SELECT ?s ?o {?s population ?o ?t}",
            })
            check("query", status == 200 and "rows" in result,
                  (status, result))
            trace_id = result.get("trace_id")
            check("query trace id", bool(trace_id), result)

            status, detail = request("GET", f"/debug/traces?id={trace_id}")
            check("debug trace resolves",
                  status == 200 and detail["trace_id"] == trace_id,
                  (status, detail))

            def span_names(node, out):
                out.append(node["name"])
                for child in node["children"]:
                    span_names(child, out)
                return out

            names = span_names(detail["root"], [])
            check("trace has store.query span", "store.query" in names,
                  names)

            status, body = request("POST", "/update", {
                "op": "insert", "subject": "SmokeCity",
                "predicate": "population", "object": "12345",
                "time": "2030-01-01",
            })
            check("update", status == 200 and body["applied"] == 1,
                  (status, body))
            pre_checkpoint_revision = body["revision"]

            status, body = request("POST", "/checkpoint")
            check("checkpoint",
                  status == 200
                  and body["revision"] == pre_checkpoint_revision,
                  (status, body))

            # WAL-only tail: updates after the checkpoint.
            for i in range(20):
                status, body = request("POST", "/update", {
                    "op": "insert", "subject": f"SmokeCity_{i}",
                    "predicate": "population", "object": str(i),
                    "time": "2030-01-02",
                })
                check(f"tail update {i}", status == 200, (status, body))
            final_revision = body["revision"]

            status, body = request("GET", "/metrics")
            check("metrics", status == 200 and "counters" in body, status)

            # Cached read path: repeating one query must serve from the
            # revision-tagged result cache after the first execution.
            for i in range(6):
                status, _ = request("POST", "/query", {
                    "query": "SELECT ?s ?o {?s population ?o ?t}",
                })
                check(f"cached mix query {i}", status == 200, status)
            status, body = request("GET", "/metrics")
            hits = body["counters"].get("service.cache.hits", 0)
            check("cache hits nonzero", hits > 0,
                  {k: v for k, v in body["counters"].items()
                   if k.startswith("service.")})

            # Workload intelligence: the mix above must have aggregated
            # into per-shape stats with a resolvable exemplar trace.
            status, workload = request("GET", "/debug/workload")
            check("workload populated",
                  status == 200 and workload["enabled"]
                  and workload["shapes"], workload)
            busiest = workload["shapes"][0]
            check("workload shape aggregates",
                  busiest["count"] > 1 and busiest["p95_ms"] >= 0
                  and 0.0 < busiest["cache_hit_ratio"] <= 1.0, busiest)
            check("workload exemplar trace id",
                  bool(busiest["exemplar_trace_id"]), busiest)

            status, storage = request("GET", "/debug/storage")
            check("storage report",
                  status == 200
                  and set(storage["indexes"])
                  == {"spo", "sop", "pos", "ops"}
                  and storage["store"]["wal"]["next_lsn"] > 1, status)

            os.kill(server.pid, signal.SIGKILL)  # crash, no shutdown
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=30)

        # Restart with parallel scanning on: recovery answers must be
        # identical regardless of the scan dispatch mode.
        server = start_server(storedir, extra=("--parallel",))
        try:
            health = wait_healthy()
            check("recovered revision",
                  health["revision"] == final_revision,
                  (health["revision"], final_revision))

            status, result = request("POST", "/query", {
                "query": "SELECT ?o {SmokeCity population ?o ?t}",
            })
            check("checkpointed update survived",
                  [r["o"] for r in result["rows"]] == ["12345"], result)

            status, result = request("POST", "/query", {
                "query": "SELECT ?s {?s population ?o ?t "
                         ". FILTER(YEAR(?t) = 2030)}",
            })
            survivors = {row["s"] for row in result["rows"]}
            expected = {"SmokeCity"} | {f"SmokeCity_{i}" for i in range(20)}
            check("WAL tail survived", survivors >= expected,
                  expected - survivors)

            status, body = request("POST", "/update", {
                "op": "delete", "subject": "SmokeCity",
                "predicate": "population", "object": "12345",
                "time": "2031-01-01",
            })
            check("post-recovery update",
                  status == 200 and body["revision"] == final_revision + 1,
                  (status, body))

            # Sampling profiler: profile one second while a query loop
            # keeps the worker threads busy — stacks must come back.
            stop_load = threading.Event()

            def query_load():
                while not stop_load.is_set():
                    request("POST", "/query", {
                        "query": "SELECT ?s ?o {?s population ?o ?t}",
                    })

            load_thread = threading.Thread(target=query_load, daemon=True)
            load_thread.start()
            try:
                status, collapsed = request_text(
                    "GET", "/debug/profile?seconds=1"
                )
            finally:
                stop_load.set()
                load_thread.join(timeout=30)
            check("profiler returns collapsed stacks",
                  status == 200 and collapsed.strip(),
                  (status, collapsed[:200]))
            heaviest = collapsed.splitlines()[0]
            check("collapsed stack format",
                  heaviest.rsplit(" ", 1)[1].isdigit(), heaviest)

            # Obs-on latency baseline: a cached repeated query, measured
            # on this (tracing-enabled) server before it shuts down.
            latency_query = "SELECT ?o {SmokeCity_1 population ?o ?t}"
            on_median = median_latency(latency_query)
        finally:
            stop_server(server)

        # Kill-switch run: REPRO_OBS=0 must hide trace ids and strip the
        # instrumentation down to noise-level overhead.
        server = start_server(storedir, env_extra={"REPRO_OBS": "0"})
        try:
            wait_healthy()
            status, result = request("POST", "/query",
                                     {"query": latency_query})
            check("kill switch hides trace id",
                  status == 200 and "trace_id" not in result, result)
            status, listing = request("GET", "/debug/traces")
            check("kill switch keeps trace buffer empty",
                  status == 200 and listing["traces"] == [], listing)
            status, workload = request("GET", "/debug/workload")
            check("kill switch keeps workload empty",
                  status == 200 and not workload["enabled"]
                  and workload["shapes"] == [], workload)
            status, _ = request_text("GET", "/debug/profile?seconds=0.1")
            check("kill switch refuses profiling", status == 503, status)
            off_median = median_latency(latency_query)
        finally:
            stop_server(server)

        ratio = on_median / off_median if off_median else float("inf")
        check("obs overhead within ratio", ratio <= OBS_RATIO,
              f"on={on_median:.6f}s off={off_median:.6f}s "
              f"ratio={ratio:.2f} limit={OBS_RATIO}")

    print("OK: serve lifecycle + crash recovery + obs kill switch")
    return 0


if __name__ == "__main__":
    sys.exit(main())
