"""Table 1: statistics of the Wikipedia Infobox edit history.

Paper: each value of the volatile properties is updated several times on
average — Software/Release 7.27, Player/Club 5.85, Country/GDP 11.78,
City/Population 7.16.  The synthetic generator is calibrated to those means;
this benchmark regenerates the table and checks the calibration.
"""

from repro.bench.experiments import experiment_table1
from repro.bench.harness import format_table, report


def test_table1_update_statistics(figure):
    rows = figure(experiment_table1)
    table = format_table(
        "Table 1 — Average Number of Updates (paper vs measured)",
        ["Category", "Property", "Paper", "Measured"],
        rows,
    )
    report("table1_update_stats", table)
    measured = {(r[0], r[1]): r[3] for r in rows}
    paper = {(r[0], r[1]): r[2] for r in rows}
    for key, value in paper.items():
        assert measured[key] == __import__("pytest").approx(value, rel=0.35)
    # The ranking of update frequencies matches the paper.
    assert (
        measured[("Country", "gdp")]
        > measured[("Software", "release")]
        > measured[("Player", "club")]
    )
