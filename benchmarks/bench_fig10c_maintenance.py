"""Figure 10(c): index maintenance time, standard vs compressed MVBT.

Paper: replaying a 68% insert / 32% delete update stream, updates on the
compressed index cost only ~5% more than on the standard index — negligible
against the 76% space saving.
"""

from repro.bench.experiments import experiment_fig10c
from repro.bench.harness import format_table, report


def test_fig10c_maintenance_time(figure):
    rows, n = figure(experiment_fig10c)
    table = format_table(
        f"Figure 10(c) — Maintenance time per update (N={n}; "
        "paper overhead: ~+5%)",
        ["Index", "Updates", "ms/update"],
        rows,
    )
    report("fig10c_maintenance", table)
    standard = rows[0][2]
    compressed = rows[1][2]
    # Small overhead: compressed updates stay within 2x of standard (the
    # paper measures +5% in Java; Python's re-encode path costs more but
    # must stay the same order of magnitude).
    assert compressed < standard * 2.0
