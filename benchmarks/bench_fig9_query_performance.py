"""Figure 9: query running time across systems.

(a)/(d) temporal selections and (b)/(e) temporal joins as the dataset grows,
on Wikipedia-like and GovTrack-like data; (c)/(f) complex queries with 3-7
patterns at fixed N.

Shape to reproduce (Section 7.3): RDF-TX in front, with the gap growing with
dataset size and with the number of query patterns; RDF-3X hurt by its
string-encoded temporal literals; Jena NG dragged down by tiny named graphs;
reification paying its five-pattern rewrite.  Absolute factors are smaller
than the paper's 1-2 orders of magnitude: all systems here share one Python
substrate, which deliberately removes the engine-overhead differences (RPC,
query algebra, transaction layers) that the paper's end-to-end measurements
include — what remains is the algorithmic gap (see EXPERIMENTS.md).
"""

import pytest

from repro.bench.experiments import (
    experiment_fig9_complex,
    experiment_fig9_sweep,
)
from repro.bench.harness import RESULTS_DIR, format_table, report

FIGURES = {
    ("wikipedia", "selection"): "9a",
    ("wikipedia", "join"): "9b",
    ("govtrack", "selection"): "9d",
    ("govtrack", "join"): "9e",
}


@pytest.mark.parametrize(
    "dataset,kind",
    list(FIGURES),
    ids=[f"fig{v}_{d}_{k}" for (d, k), v in FIGURES.items()],
)
def test_fig9_sweeps(figure, dataset, kind):
    header, rows = figure(experiment_fig9_sweep, dataset, kind,
                          profile_dir=RESULTS_DIR)
    fig = FIGURES[(dataset, kind)]
    table = format_table(
        f"Figure {fig} — Temporal {kind} in {dataset} (ms/query)",
        header,
        rows,
    )
    report(f"fig{fig}_{dataset}_{kind}", table)
    names = header[1:]
    largest = dict(zip(names, rows[-1][1:]))
    # RDF-TX leads (or ties within noise) at the largest N...
    floor = min(largest.values())
    assert largest["RDF-TX"] <= floor * 1.6
    # ...and beats the heavyweight strategies clearly.
    assert largest["RDF-TX"] < largest["Jena NG"]
    assert largest["RDF-TX"] < largest["RDF-3X"]


@pytest.mark.parametrize("dataset", ["wikipedia", "govtrack"],
                         ids=["fig9c_wikipedia", "fig9f_govtrack"])
def test_fig9_complex(figure, dataset):
    header, rows, n = figure(experiment_fig9_complex, dataset,
                             profile_dir=RESULTS_DIR)
    fig = "9c" if dataset == "wikipedia" else "9f"
    table = format_table(
        f"Figure {fig} — Complex queries in {dataset} (N={n}, ms/query)",
        header,
        rows,
    )
    report(f"fig{fig}_{dataset}_complex", table)
    names = header[1:]
    at7 = dict(zip(names, rows[-1][1:]))
    floor = min(at7.values())
    assert at7["RDF-TX"] <= floor * 1.6
    assert at7["RDF-TX"] < at7["RDF-3X"]
    assert at7["RDF-TX"] < at7["Jena Ref"]
