"""Scan-on-compressed A/B: packed-scan substrate versus decode-then-filter.

Two arms over byte-identical engines (same dataset seed, same bulk load):

* **legacy** — ``PACKED_OFF`` plus the old unconditional leaf memo
  (``hot_uses=1``, effectively unbounded budget): every touched leaf is
  decoded into Python objects on first contact and kept resident forever;
* **packed** — the adaptive default (``PACKED_AUTO``, bounded memo):
  cold scans run directly over the delta-compressed byte buffer,
  materializing pieces only for survivors; only repeat-scanned leaves
  within the process-wide budget keep a decoded tuple.

Measured, per arm:

* **cold first touch** — latency of a sweep of one-tick snapshot scans
  across the history plus the first pass of the fig9 query suite, all
  on a freshly-built engine (the packed path's target: entries whose
  intervals miss the slice are filtered without being materialized),
  plus the decoded entries left resident by it;
* **warm fig9 queries** — selection+join suites repeated warm (the memo
  policy's target: no regression once leaves are hot);
* **resident footprint** — decoded entries held in leaf memos after the
  cold pass and after the warm workload (``comp.memo_entries()`` deltas
  against the arm's baseline; each arm decompresses its trees on exit
  so the arms never share memo-budget charges).

Byte-identity between the arms — serial and parallel — is asserted, not
sampled.  Results land in ``bench_results/BENCH_scan_packed.json`` and
``bench_results/scan_packed.txt``.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_scan_packed.py
"""

from __future__ import annotations

import json
import time

from repro.bench.harness import RESULTS_DIR, format_table, report, scaled
from repro.datasets import wikipedia
from repro.datasets.queries import join_queries, selection_queries
from repro.engine import RDFTX
from repro.mvbt import MAX_KEY, MIN_KEY, scan_pieces
from repro.mvbt import compression as comp

N_TRIPLES = scaled(16000)
DATASET_SEED = 7
WARM_REPEATS = 5

ARMS = {
    "legacy": {"mode": comp.PACKED_OFF, "hot_uses": 1, "budget": 1 << 60},
    "packed": {
        "mode": comp.PACKED_AUTO,
        "hot_uses": comp.HOT_USES,
        "budget": comp.memo_budget(),
    },
}


def build_engine():
    graph = wikipedia.generate(N_TRIPLES, seed=DATASET_SEED).graph
    return RDFTX.from_graph(graph)


def run_arm(name, cfg):
    prev_mode = comp.set_packed_mode(cfg["mode"])
    prev_policy = comp.set_memo_policy(cfg["hot_uses"], cfg["budget"])
    memo_base = comp.memo_entries()
    engine = build_engine()
    try:
        graph = engine._graph
        queries = selection_queries(graph, count=8) + join_queries(
            graph, count=4
        )
        horizon = engine.horizon

        # Phase 1: cold first touch.  Two first-contact workloads on the
        # freshly-built engine: a sweep of one-tick snapshot scans across
        # the history (visited leaves hold many entries whose intervals
        # miss the slice — the low-selectivity case the packed decoder
        # filters without materializing), then the first serial pass of
        # the fig9 selection+join suite.  The legacy arm decodes and
        # memoizes every leaf either workload touches.
        engine.parallel = False
        emitted = 0
        slices = [
            (t, t + 1) for t in range(1, horizon, max(horizon // 32, 1))
        ]
        start = time.perf_counter()
        for t1, t2 in slices:
            for tree in engine.indexes.values():
                emitted += len(scan_pieces(tree, MIN_KEY, MAX_KEY, t1, t2))
        rows = [repr(engine.query(q).rows) for q in queries]
        cold_ms = (time.perf_counter() - start) * 1000.0
        cold_resident = comp.memo_entries() - memo_base

        # Phase 2: warm repeated queries (serial).  The untimed pass
        # (second contact for the query-touched leaves) warms them past
        # ``hot_uses`` in both arms, so the timed loop measures the
        # steady state the memo policy promises not to regress.
        for q in queries:
            engine.query(q)
        passes = []
        for _ in range(WARM_REPEATS):
            start = time.perf_counter()
            for q in queries:
                engine.query(q)
            passes.append(time.perf_counter() - start)
        # Min-of-N: both arms serve the timed loop from the leaf memo,
        # so the best pass is the steady state and the rest is noise.
        warm_ms = min(passes) * 1000.0 / len(queries)
        warm_resident = comp.memo_entries() - memo_base

        # ... and the same workload in parallel mode, for identity.
        engine.parallel = True
        parallel_rows = [repr(engine.query(q).rows) for q in queries]
        engine.parallel = False

        return {
            "cold_scan_ms_total": round(cold_ms, 3),
            "cold_pieces_emitted": emitted,
            "cold_entries_resident": cold_resident,
            "warm_ms_per_query": round(warm_ms, 4),
            "warm_entries_resident": warm_resident,
        }, rows, parallel_rows
    finally:
        # Release this arm's memo-budget charges before the next arm
        # measures against its own baseline.
        for tree in engine.indexes.values():
            tree.decompress()
        comp.set_packed_mode(prev_mode)
        comp.set_memo_policy(*prev_policy)


def main():
    results = {}
    identity = {}
    for name, cfg in ARMS.items():
        results[name], serial_rows, parallel_rows = run_arm(name, cfg)
        identity[name] = serial_rows
        if parallel_rows != serial_rows:
            raise SystemExit(f"{name}: parallel results diverge from serial")
    if identity["legacy"] != identity["packed"]:
        raise SystemExit("packed arm results diverge from legacy arm")

    legacy, packed = results["legacy"], results["packed"]
    payload = {
        "n_triples": N_TRIPLES,
        "arms": results,
        "byte_identical": True,
        "cold_scan_speedup": round(
            legacy["cold_scan_ms_total"]
            / max(packed["cold_scan_ms_total"], 1e-9),
            3,
        ),
        "warm_ratio": round(
            packed["warm_ms_per_query"]
            / max(legacy["warm_ms_per_query"], 1e-9),
            3,
        ),
        "resident_entries_reduction": round(
            1.0
            - packed["warm_entries_resident"]
            / max(legacy["warm_entries_resident"], 1),
            3,
        ),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_scan_packed.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    header = ["metric", "legacy", "packed"]
    rows = [
        (k, legacy[k], packed[k])
        for k in sorted(set(legacy) | set(packed))
    ]
    table = format_table(
        f"Scan-on-compressed A/B (N={N_TRIPLES}, byte-identical results)",
        header,
        rows,
    )
    report("scan_packed", table)
    print(
        f"cold-scan speedup {payload['cold_scan_speedup']}x, "
        f"warm ratio {payload['warm_ratio']}, resident-entry reduction "
        f"{payload['resident_entries_reduction']:.0%}"
    )


if __name__ == "__main__":
    main()
