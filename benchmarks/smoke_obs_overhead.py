"""Smoke check: the observability layer is near-free when switched off.

Runs a small selection + join workload twice — once with the metrics
registry enabled, once with it disabled via ``repro.obs.set_enabled`` —
and asserts the enabled/disabled ratio stays within noise.  This is the
guard behind the ``REPRO_OBS=0`` kill switch: with instrumentation off,
query timings must match the pre-observability engine (the acceptance
bar in CI is deliberately loose because shared runners are noisy; the
<3% bound is checked locally against fig9 results).

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/smoke_obs_overhead.py

Exits nonzero when the overhead ratio exceeds the threshold.
"""

from __future__ import annotations

import os
import sys
import time

# Allow running from the repo root without an installed package.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.experiments import BENCH_CONFIG  # noqa: E402
from repro.bench.harness import scaled  # noqa: E402
from repro.datasets import wikipedia  # noqa: E402
from repro.engine import RDFTX  # noqa: E402
from repro.datasets.queries import (  # noqa: E402
    join_queries,
    selection_queries,
)
from repro.obs import REGISTRY, set_enabled  # noqa: E402

#: Enabled/disabled ratio allowed before the check fails.  The metrics
#: layer batches counter updates per operator, so the true overhead is a
#: few percent; the threshold leaves room for scheduler noise on CI.
MAX_RATIO = float(os.environ.get("OBS_OVERHEAD_MAX_RATIO", "1.25"))

REPEATS = int(os.environ.get("OBS_OVERHEAD_REPEATS", "5"))


def _workload():
    graph = wikipedia.generate(scaled(6000), seed=1).graph
    engine = RDFTX.from_graph(graph, config=BENCH_CONFIG)
    queries = selection_queries(graph, count=5) + join_queries(graph, count=5)
    return engine, queries


def _time_once(engine, queries) -> float:
    start = time.perf_counter()
    for text in queries:
        engine.query(text)
    return time.perf_counter() - start


def _best_of(engine, queries, repeats: int) -> float:
    # Best-of-N is far more stable than the mean on noisy runners.
    return min(_time_once(engine, queries) for _ in range(repeats))


def main() -> int:
    engine, queries = _workload()
    _time_once(engine, queries)  # warm caches once for both arms

    previous = set_enabled(True)
    try:
        on = _best_of(engine, queries, REPEATS)
        set_enabled(False)
        off = _best_of(engine, queries, REPEATS)
    finally:
        set_enabled(previous)

    ratio = on / off if off else float("inf")
    print(f"obs on : {on * 1000:8.2f} ms")
    print(f"obs off: {off * 1000:8.2f} ms")
    print(f"ratio  : {ratio:.3f} (limit {MAX_RATIO})")
    snapshot = REGISTRY.snapshot()
    probes = sum(len(v) for v in snapshot.values())
    print(f"probes : {probes} metrics registered")
    if ratio > MAX_RATIO:
        print("FAIL: instrumentation overhead exceeds the threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
