"""Cluster observability overhead: traced vs kill-switched query latency.

Runs the same query mix against a 2-shard in-process
:class:`~repro.cluster.ClusterStore` twice:

* **tracing on** — observability enabled and every query wrapped in
  ``repro.obs.trace.start_trace``, so the coordinator attaches a trace
  id to each RPC, the shard workers build and ship their span subtrees,
  and the coordinator grafts them (the full stitching path from
  ``/debug/traces``),
* **tracing off** — the ``REPRO_OBS`` kill switch engaged, which
  no-ops every probe and keeps trace ids off the wire.

Each mode gets a fresh store loaded with the identical dataset; the
serialized query results must be byte-identical between modes (tracing
must never change answers) and the tracing-on/off median-latency ratio
must stay under ``CLUSTER_OBS_MAX_RATIO`` (default 1.25).  Because the
workers are subprocesses time-slicing shared CI cores, the ratio is
noisy — the run retries up to ``CLUSTER_OBS_ATTEMPTS`` times and keeps
the best attempt.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_cluster_obs.py

Writes the machine-readable summary to
``bench_results/BENCH_cluster_obs.json`` and exits nonzero when the
results diverge or every attempt exceeds the ratio bound.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time

# Allow running from the repo root without an installed package.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.harness import RESULTS_DIR, scaled  # noqa: E402
from repro.cluster import ClusterStore  # noqa: E402
from repro.datasets import wikipedia  # noqa: E402
from repro.datasets.queries import (  # noqa: E402
    join_queries,
    selection_queries,
)
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402

#: Tracing-on / tracing-off ratio allowed before the check fails.
MAX_RATIO = float(os.environ.get("CLUSTER_OBS_MAX_RATIO", "1.25"))

#: Retries before the ratio bound is declared breached (noise damping).
ATTEMPTS = int(os.environ.get("CLUSTER_OBS_ATTEMPTS", "3"))

TRIPLES = scaled(3000)
PASSES = int(os.environ.get("CLUSTER_OBS_PASSES", "4"))
SHARDS = 2


def _fingerprint(result) -> str:
    """The byte-identity contract: variables + rows, canonically dumped."""
    return json.dumps(
        {
            "variables": list(result.variables),
            "rows": [[str(term) for term in row] for row in result.rows],
        },
        sort_keys=True,
    )


def _run_mode(graph, mix, tracing: bool) -> tuple[float, list[str]]:
    """Median per-query latency (ms) and result fingerprints for one arm.

    A fresh cluster per mode keeps both arms on identical state (same
    load order, cold caches) so the latency delta is the tracing path
    alone and the fingerprints are comparable.
    """
    was_enabled = obs_metrics.ENABLED
    obs_metrics.set_enabled(tracing)
    try:
        with tempfile.TemporaryDirectory() as tmp:
            with ClusterStore(os.path.join(tmp, "clu"), shards=SHARDS,
                              fsync=False,
                              query_cache_size=None) as cluster:
                cluster.load_dataset(graph)

                def run(text):
                    if tracing:
                        with obs_trace.start_trace("bench.cluster_obs"):
                            return cluster.query(text)
                    return cluster.query(text)

                fingerprints = [_fingerprint(run(text)) for text in mix]
                latencies = []
                for _ in range(PASSES):
                    for text in mix:
                        start = time.perf_counter()
                        run(text)
                        latencies.append(
                            (time.perf_counter() - start) * 1000.0
                        )
    finally:
        obs_metrics.set_enabled(was_enabled)
    return statistics.median(latencies), fingerprints


def main() -> int:
    graph = wikipedia.generate(TRIPLES, seed=17).graph
    mix = (selection_queries(graph, count=6, seed=1)
           + join_queries(graph, count=4, seed=2))

    attempts = []
    best = None
    for attempt in range(1, ATTEMPTS + 1):
        on_ms, on_fp = _run_mode(graph, mix, tracing=True)
        off_ms, off_fp = _run_mode(graph, mix, tracing=False)
        if on_fp != off_fp:
            print("FAIL: traced and untraced results diverged")
            for a, b, text in zip(on_fp, off_fp, mix):
                if a != b:
                    print(f"  on {text}\n    traced:   {a[:160]}"
                          f"\n    untraced: {b[:160]}")
            return 1
        ratio = on_ms / off_ms if off_ms else float("inf")
        attempts.append({
            "tracing_on_median_ms": round(on_ms, 4),
            "tracing_off_median_ms": round(off_ms, 4),
            "ratio": round(ratio, 4),
        })
        print(f"attempt {attempt}: on {on_ms:.3f} ms, "
              f"off {off_ms:.3f} ms, ratio {ratio:.3f}")
        if best is None or ratio < best["ratio"]:
            best = attempts[-1]
        if ratio <= MAX_RATIO:
            break

    payload = {
        "triples": TRIPLES,
        "shards": SHARDS,
        "queries": len(mix),
        "passes": PASSES,
        "max_ratio": MAX_RATIO,
        "results_identical": True,
        "attempts": attempts,
        "overhead_ratio_median": best["ratio"],
        "tracing_on_median_ms": best["tracing_on_median_ms"],
        "tracing_off_median_ms": best["tracing_off_median_ms"],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "BENCH_cluster_obs.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if best["ratio"] > MAX_RATIO:
        print(f"FAIL: tracing overhead ratio {best['ratio']:.3f} "
              f"> {MAX_RATIO} after {len(attempts)} attempts")
        return 1
    print(f"cluster tracing overhead ok (ratio {best['ratio']:.3f} "
          f"<= {MAX_RATIO})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
