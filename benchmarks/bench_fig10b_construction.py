"""Figure 10(b): index construction time vs dataset size.

Paper: approximately linear in the number of triples (with a mild
superlinear tail they attribute to JVM garbage collection).
"""

from repro.bench.experiments import experiment_fig10b
from repro.bench.harness import format_table, report


def test_fig10b_construction_time(figure):
    rows = figure(experiment_fig10b)
    table = format_table(
        "Figure 10(b) — Index Construction Time (4 MVBTs + compression)",
        ["Triples", "Seconds"],
        rows,
    )
    report("fig10b_construction", table)
    # Approximately linear: per-triple cost within a factor ~3 end to end.
    per_triple = [seconds / n for n, seconds in rows]
    assert max(per_triple) < 3.5 * min(per_triple)
