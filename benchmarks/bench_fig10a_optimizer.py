"""Figure 10(a): effectiveness of the query optimizer.

Paper: the optimizer's plan is very close to the true best plan; the worst
plan costs about twice the optimized one on average, with the gap growing as
the pattern count grows; optimization itself takes 3.5-10ms.
"""

from repro.bench.experiments import experiment_fig10a
from repro.bench.harness import format_table, report


def test_fig10a_optimizer_effectiveness(figure):
    rows, n = figure(experiment_fig10a)
    table = format_table(
        f"Figure 10(a) — Plan quality (N={n}, ms; paper: optimized ~ best, "
        "worst ~ 2x)",
        ["Patterns", "Best", "RDF-TX plan", "Worst", "Optimize (ms)"],
        rows,
    )
    report("fig10a_optimizer", table)
    total_best = sum(r[1] for r in rows)
    total_chosen = sum(r[2] for r in rows)
    total_worst = sum(r[3] for r in rows)
    # The optimizer's plan is close to the best plan overall...
    assert total_chosen <= total_best * 1.6
    # ...and clearly better than the worst plan.
    assert total_worst > total_chosen * 1.4
    # The best/worst gap widens with pattern count (compare 3 vs 7).
    gap_small = rows[0][3] / max(rows[0][1], 1e-9)
    gap_large = rows[-1][3] / max(rows[-1][1], 1e-9)
    assert gap_large > gap_small
