"""Yago2 experiments (paper Section 7.1.1 / technical report).

The paper generates 30M+ temporal triples from Yago2 but moves the results
to its technical report because they are "very similar to Wikipedia and
GovTrack".  This benchmark regenerates the selection and join sweeps on a
Yago2-like dataset and checks exactly that similarity claim: the same
system ordering as on the other two datasets.
"""

import pytest

from repro.bench.experiments import experiment_fig9_sweep
from repro.bench.harness import format_table, report


@pytest.mark.parametrize("kind", ["selection", "join"])
def test_yago_sweeps(figure, kind):
    header, rows = figure(experiment_fig9_sweep, "yago", kind)
    table = format_table(
        f"Yago2 (tech report) — Temporal {kind} (ms/query)",
        header,
        rows,
    )
    report(f"yago_{kind}", table)
    names = header[1:]
    largest = dict(zip(names, rows[-1][1:]))
    floor = min(largest.values())
    # Same shape as Figures 9(a)-(e): RDF-TX leads or ties, the heavyweight
    # reified strategies trail.
    assert largest["RDF-TX"] <= floor * 1.6
    assert largest["RDF-TX"] < largest["RDF-3X"]
    assert largest["RDF-TX"] < largest["Jena NG"]
